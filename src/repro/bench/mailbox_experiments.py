"""Mailbox experiment driver: the numbers behind ``BENCH_mailbox.json``.

Four scenarios exercise the delivery lifecycle end to end — a clean
run, the same run under 5% packet loss, under host churn (a join and a
graceful leave mid-run), and under churn *and* loss *and* a mid-run
crash/restart.  Every scenario drives the same deterministic workload
through the typed-config facade: peers spread over the daemons, a
poll-mode consumer per peer, point-to-point mail on a fixed send
schedule plus one broadcast fan-out.

Two kinds of numbers come out, with different portability:

* The *simulated* results (delivery latency, throughput in simulated
  seconds, lifecycle counters, the read-set digest) are bit-identical
  for a given seed on any host — the perf guard asserts they match
  ``BASELINE`` exactly, which is the determinism regression test.
* ``mail_ops_per_sec`` is wall-clock (mails delivered + read per
  second of real time across all scenarios, best-of-N).  It moves with
  the machine; the CI smoke guard allows a 25% regression before
  failing, same contract as the other perf suites.
"""

from __future__ import annotations

__all__ = ["BASELINE", "run_mailbox_bench", "run_mailbox_scenario"]

#: Scenario knobs, in report order.
SCENARIOS = {
    "baseline": {},
    "loss": {"loss": 0.05},
    "churn": {"churn": True},
    "churn_loss": {"loss": 0.05, "churn": True, "crash": True},
}

N_HOSTS = 4
N_PEERS = 6
N_MAILS = 48
SEND_SPACING_S = 0.004
POLL_INTERVAL_S = 0.01
BCAST_AT_S = 0.1
JOIN_AT_S = 0.06
LEAVE_AT_S = 0.11
CRASH_AT_S = 0.05
RESTART_AT_S = 0.13
SEED = 11

#: What the mailbox layer measured when the committed
#: ``BENCH_mailbox.json`` was captured.  The ``scenarios`` side is
#: simulated and must reproduce bit-identically on any host; the
#: ``mail_ops_per_sec`` side is wall-clock on the capture machine.
BASELINE = {
    "captured": "mailbox layer at introduction (v1.3.0)",
    "mail_ops_per_sec": 17600.0,
    "scenarios": {
        "baseline": {
            "delivered": 54,
            "latency_mean_s": 0.002667185,
            "latency_p95_s": 0.006243,
            "makespan_s": 0.2,
            "read_digest": "24acce7fe8cebf08a44760042fa387f8c62bb3df",
            "throughput_mail_per_s": 270.0,
        },
        "loss": {
            "delivered": 54,
            "latency_mean_s": 0.003886926,
            "latency_p95_s": 0.008549,
            "makespan_s": 0.583181894,
            "read_digest": "ec91107937a7c73ec083c4562a0e494e6757d92a",
            "throughput_mail_per_s": 92.5954673,
        },
        "churn": {
            "delivered": 54,
            "latency_mean_s": 0.002675944,
            "latency_p95_s": 0.006243,
            "makespan_s": 0.2,
            "read_digest": "24acce7fe8cebf08a44760042fa387f8c62bb3df",
            "throughput_mail_per_s": 270.0,
        },
        "churn_loss": {
            "delivered": 54,
            "latency_mean_s": 0.004182648,
            "latency_p95_s": 0.010794,
            "makespan_s": 0.579181894,
            "read_digest": "ec91107937a7c73ec083c4562a0e494e6757d92a",
            "throughput_mail_per_s": 93.2349588,
        },
    },
}


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_mailbox_scenario(
    loss: float = 0.0,
    churn: bool = False,
    crash: bool = False,
    seed: int = SEED,
) -> dict:
    """One deterministic mailbox workload; returns simulated metrics.

    ``N_PEERS`` logical nodes spread round-robin over the daemons, each
    with a poll-mode consumer; ``N_MAILS`` point-to-point mails posted
    on a fixed schedule plus one broadcast.  ``churn`` joins a fresh
    host and retires ``host1`` (two peers re-home with mail in flight);
    ``crash`` kills and restarts ``host2`` mid-run; ``loss`` drops that
    fraction of packets (the reliable mailbox port retransmits).
    """
    from .. import Cluster, ClusterConfig, MailboxConfig
    from ..faults import FaultPlan

    plan = None
    if loss or crash:
        plan = FaultPlan()
        if loss:
            plan.drop(loss)
        if crash:
            plan.crash("host2", at=CRASH_AT_S)
            plan.restart("host2", at=RESTART_AT_S)
    c = Cluster(config=ClusterConfig(
        n_hosts=N_HOSTS,
        mailbox=MailboxConfig(poll_interval_s=POLL_INTERVAL_S),
        faults=plan,
        seed=seed,
    ))
    received: list[tuple[str, int]] = []
    for index in range(N_PEERS):
        node = c.add_node(f"peer{index}", daemon=f"host{index % N_HOSTS}")
        c.consumer(
            node,
            lambda mail, name=f"peer{index}": received.append(
                (name, mail.id)
            ),
        )

    for index in range(N_MAILS):
        c.schedule(
            (index + 1) * SEND_SPACING_S,
            lambda c, i=index: c.send_mail(
                f"peer{i % N_PEERS}", {"task": i}, subject=f"task-{i}"
            ),
        )
    c.schedule(BCAST_AT_S, lambda c: c.broadcast("sync", subject="round"))
    if churn:
        c.schedule(JOIN_AT_S, lambda c: c.join_host())
        c.schedule(LEAVE_AT_S, lambda c: c.leave_host("host1"))
    c.run_to_quiescence()

    service = c.mail
    latencies = service.latencies
    delivered = service.counts.get("delivered", 0)
    return {
        "counts": dict(sorted(service.counts.items())),
        "lifecycle": service.lifecycle_counts(),
        "read_digest": service.read_digest(),
        "received": len(received),
        "latency_mean_s": round(sum(latencies) / len(latencies), 9)
        if latencies else 0.0,
        "latency_p95_s": round(_percentile(latencies, 0.95), 9),
        "latency_max_s": round(max(latencies), 9) if latencies else 0.0,
        "makespan_s": round(c.now, 9),
        "delivered": delivered,
        "throughput_mail_per_s": round(delivered / c.now, 7)
        if c.now else 0.0,
    }


def run_mailbox_bench(repeats: int = 3) -> dict:
    """Measure all scenarios; return the ``BENCH_mailbox.json`` blob.

    Each scenario runs ``repeats`` times; the simulated side is
    asserted identical across repeats (it cannot legally vary) and the
    minimum wall clock is kept.
    """
    import gc
    import time

    scenarios: dict[str, dict] = {}
    total_ops = 0
    total_wall = 0.0
    for name, knobs in SCENARIOS.items():
        best_wall = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            gc.collect()
            start = time.perf_counter()
            run = run_mailbox_scenario(**knobs)
            wall = time.perf_counter() - start
            best_wall = min(best_wall, wall)
            if result is not None and run != result:
                raise AssertionError(
                    f"mailbox scenario {name!r} was not deterministic "
                    "across repeats"
                )
            result = run
        result["wall_s"] = round(best_wall, 6)
        scenarios[name] = result
        total_ops += result["delivered"] + result["counts"].get("read", 0)
        total_wall += best_wall

    mail_ops_per_sec = round(total_ops / total_wall, 1) if total_wall else 0.0
    identical = all(
        all(
            scenarios[name][key] == value
            for key, value in expected.items()
        )
        for name, expected in BASELINE["scenarios"].items()
    )
    return {
        "baseline": BASELINE,
        "current": {
            "scenarios": scenarios,
            "mail_ops_per_sec": mail_ops_per_sec,
        },
        "vs_baseline": {
            "mail_ops_ratio": round(
                mail_ops_per_sec / BASELINE["mail_ops_per_sec"], 4
            ),
            "simulated_identical": identical,
        },
    }
