"""Experiment drivers for the Mandelbrot figures (Figures 4–7).

Each paper figure fixes an image resolution and plots execution time
against processor count for three grid decompositions (8×8, 16×16,
32×32) and three systems (MESSENGERS, PVM, sequential C).  The drivers
here run those sweeps on the simulated cluster and return
:class:`~repro.bench.reporting.Figure` data.

By default the sweeps use the paper's exact parameters.  Because the
kernel memoizes block results, the numpy work per resolution is done
once; additional (grid, procs, system) points cost only simulation
time.  ``scale`` lets tests and quick runs shrink the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..apps.mandelbrot import (
    TaskGrid,
    run_messengers,
    run_pvm,
    run_sequential,
)
from ..netsim import CostModel, DEFAULT_COSTS
from .reporting import Figure

__all__ = [
    "PAPER_PROCESSOR_COUNTS",
    "PAPER_GRIDS",
    "MandelbrotSweep",
    "run_figure",
    "best_case_comparison",
]

#: The paper varies "the number of processors from 1 to 32".
PAPER_PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32)
#: "Each image was divided into grids of 8x8, 16x16, and 32x32 blocks."
PAPER_GRIDS = (8, 16, 32)


@dataclass
class MandelbrotSweep:
    """Raw results of one figure's sweep."""

    image_size: int
    sequential_seconds: float
    #: (grid, system) -> {procs: seconds}; system in {"messengers", "pvm"}
    curves: dict = field(default_factory=dict)

    def seconds(self, grid: int, system: str, procs: int) -> float:
        return self.curves[(grid, system)][procs]

    def as_figure(self) -> Figure:
        figure = Figure(
            title=(
                f"Mandelbrot {self.image_size}x{self.image_size} "
                "(execution time, simulated seconds)"
            ),
            x_label="processors",
            y_label="seconds",
        )
        for (grid, system), points in sorted(self.curves.items()):
            series = figure.new_series(f"{system}-{grid}x{grid}")
            for procs, seconds in sorted(points.items()):
                series.add(procs, seconds)
        seq = figure.new_series("sequential-C")
        xs = sorted({p for c in self.curves.values() for p in c})
        for procs in xs:
            seq.add(procs, self.sequential_seconds)
        return figure


def run_figure(
    image_size: int,
    grids: Sequence[int] = PAPER_GRIDS,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    costs: CostModel = DEFAULT_COSTS,
) -> MandelbrotSweep:
    """Run one of Figures 4/5/6 (320/640/1280 image size)."""
    sequential = run_sequential(TaskGrid(image_size, grids[0]), costs)
    sweep = MandelbrotSweep(
        image_size=image_size,
        sequential_seconds=sequential.seconds,
    )
    for grid_size in grids:
        grid = TaskGrid(image_size, grid_size)
        pvm_curve: dict = {}
        msgr_curve: dict = {}
        for procs in processor_counts:
            pvm_curve[procs] = run_pvm(grid, procs, costs).seconds
            msgr_curve[procs] = run_messengers(grid, procs, costs).seconds
        sweep.curves[(grid_size, "pvm")] = pvm_curve
        sweep.curves[(grid_size, "messengers")] = msgr_curve
    return sweep


def best_case_comparison(
    image_size: int = 1280,
    grid_size: int = 8,
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Figure 7: the case most favourable to MESSENGERS.

    Returns per-processor-count times and speedups over sequential for
    both systems (the paper reports MESSENGERS ≈5× faster than PVM at
    32 processors, with near-linear speedup).
    """
    grid = TaskGrid(image_size, grid_size)
    sequential = run_sequential(grid, costs).seconds
    rows = []
    for procs in processor_counts:
        pvm = run_pvm(grid, procs, costs).seconds
        msgr = run_messengers(grid, procs, costs).seconds
        rows.append(
            {
                "procs": procs,
                "pvm_s": pvm,
                "messengers_s": msgr,
                "pvm_speedup": sequential / pvm,
                "messengers_speedup": sequential / msgr,
                "ratio": pvm / msgr,
            }
        )
    return {
        "image_size": image_size,
        "grid": grid_size,
        "sequential_s": sequential,
        "rows": rows,
    }
