"""Resilience experiment drivers: detection latency and recovery time.

Two sweeps behind ``BENCH_resilience.json``:

``run_detection_sweep``
    How fast does each failure detector notice a mid-run worker-host
    crash, as its suspicion threshold tightens?  Heartbeat detectors
    sweep the miss count, phi-accrual detectors sweep the phi
    threshold.  Lower thresholds detect sooner but (on a jittery
    arrival history) risk false suspicions — both columns are
    reported.

``run_recovery_comparison``
    End-to-end recovery time for the Figure-4 Mandelbrot workload on
    both systems when the same crash is healed by (a) the oracle crash
    hook (recovery begins the instant the host dies — a lower bound no
    real system achieves), (b) a heartbeat detector, and (c) a
    phi-accrual detector.  Every run must still produce an image
    bit-identical to the fault-free run; the detector only changes
    *when* recovery starts, never *what* it computes.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.mandelbrot import TaskGrid, run_messengers, run_pvm
from ..netsim import CostModel, DEFAULT_COSTS

__all__ = [
    "HEARTBEAT_MISS_SWEEP",
    "PHI_THRESHOLD_SWEEP",
    "run_detection_sweep",
    "run_recovery_comparison",
]

#: Miss counts swept for the heartbeat detector (suspect after N
#: silent intervals).
HEARTBEAT_MISS_SWEEP = (2, 3, 5, 8)

#: Phi thresholds swept for the accrual detector (suspect when the
#: probability the host is still alive drops below 10**-phi).
PHI_THRESHOLD_SWEEP = (2.0, 4.0, 8.0, 12.0)


def _crash_plan(rate: float, host: str, at: float):
    from ..faults import FaultPlan

    plan = FaultPlan()
    if rate > 0.0:
        plan.drop(rate)
    return plan.crash(host, at=at)


def run_detection_sweep(
    image_size: int = 128,
    grid_size: int = 8,
    procs: int = 3,
    heartbeat_misses: Sequence[int] = HEARTBEAT_MISS_SWEEP,
    phi_thresholds: Sequence[float] = PHI_THRESHOLD_SWEEP,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Detection latency versus suspicion threshold, per detector.

    Returns a JSON-ready dict: for each detector configuration, the
    mean detection latency (announce time minus crash time), false
    suspicions, and whether the recovered image stayed bit-identical.
    The workload is the Mandelbrot run on MESSENGERS with one worker
    host crashing halfway through the fault-free runtime.  It is
    deliberately longer than the ``chaos`` default so the phi
    detector's inter-arrival history is warm at crash time; on a run
    shorter than a few heartbeat intervals the accrual estimator falls
    back to its max-silence cap and the threshold has no effect.
    """
    from ..resilience import ResiliencePolicy

    grid = TaskGrid(image_size, grid_size)
    clean = run_messengers(grid, procs, costs)
    crash_host = f"host{min(2, procs)}"
    crash_at = 0.5 * clean.seconds

    def measure(policy):
        result = run_messengers(
            grid, procs, costs,
            faults=_crash_plan(0.0, crash_host, crash_at),
            seed=seed, resilience=policy,
        )
        stats = result.stats["resilience"]
        return {
            "detection_latency_s": stats["detection_latency_mean_s"],
            "false_suspicions": stats["false_suspicions"],
            "seconds": result.seconds,
            "image_identical": bool((result.image == clean.image).all()),
        }

    heartbeat_rows = [
        {"misses": misses, **measure(
            ResiliencePolicy(detector="heartbeat", heartbeat_misses=misses)
        )}
        for misses in heartbeat_misses
    ]
    phi_rows = [
        {"phi_threshold": threshold, **measure(
            ResiliencePolicy(detector="phi", phi_threshold=threshold)
        )}
        for threshold in phi_thresholds
    ]
    return {
        "workload": {
            "system": "messengers",
            "image_size": image_size,
            "grid": grid_size,
            "procs": procs,
            "crash_host": crash_host,
            "crash_at_s": crash_at,
            "seed": seed,
        },
        "heartbeat": heartbeat_rows,
        "phi": phi_rows,
    }


def run_recovery_comparison(
    image_size: int = 64,
    grid_size: int = 4,
    procs: int = 3,
    loss_rate: float = 0.05,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Oracle versus detector-driven recovery, both systems.

    ``recovery_penalty_s`` is the run's extra simulated time over the
    fault-free baseline; ``detection_cost_s`` is how much of that
    penalty the detector added over the oracle (the price of learning
    about the crash from silence instead of from the simulator).
    """
    from ..resilience import ResiliencePolicy

    grid = TaskGrid(image_size, grid_size)
    runners = {"messengers": run_messengers, "pvm": run_pvm}
    modes = {
        "oracle": None,
        "heartbeat": ResiliencePolicy(detector="heartbeat"),
        "phi": ResiliencePolicy(detector="phi"),
    }
    crash_host = f"host{min(2, procs)}"
    systems: dict = {}
    for name, runner in runners.items():
        clean = runner(grid, procs, costs)
        crash_at = 0.5 * clean.seconds
        plan_args = (loss_rate, crash_host, crash_at)
        rows = []
        oracle_seconds = None
        for mode, policy in modes.items():
            result = runner(
                grid, procs, costs,
                faults=_crash_plan(*plan_args),
                seed=seed, resilience=policy,
            )
            if mode == "oracle":
                oracle_seconds = result.seconds
            row = {
                "mode": mode,
                "seconds": result.seconds,
                "recovery_penalty_s": result.seconds - clean.seconds,
                "detection_cost_s": result.seconds - oracle_seconds,
                "image_identical": bool(
                    (result.image == clean.image).all()
                ),
            }
            if policy is not None:
                stats = result.stats["resilience"]
                row["detection_latency_s"] = (
                    stats["detection_latency_mean_s"]
                )
                row["false_suspicions"] = stats["false_suspicions"]
            rows.append(row)
        systems[name] = {
            "clean_s": clean.seconds,
            "crash_at_s": crash_at,
            "rows": rows,
        }
    return {
        "workload": {
            "image_size": image_size,
            "grid": grid_size,
            "procs": procs,
            "loss_rate": loss_rate,
            "crash_host": crash_host,
            "seed": seed,
        },
        "systems": systems,
    }
