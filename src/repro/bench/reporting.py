"""Tabular and series reporting for the benchmark harness.

Every benchmark regenerates a paper table or figure as text: a table of
rows (one per parameter point) plus, for figures, an ASCII rendering of
the series.  Benchmarks print these so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's artifacts in the log, and
EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["Series", "Figure", "format_table", "ascii_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class Series:
    """One curve of a figure."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x):
        """The y value at a given x (exact match)."""
        return self.ys[self.xs.index(x)]


@dataclass
class Figure:
    """A named collection of series over a shared x axis."""

    title: str
    x_label: str
    y_label: str
    series: list = field(default_factory=list)

    def new_series(self, name: str) -> Series:
        s = Series(name)
        self.series.append(s)
        return s

    def as_table(self) -> str:
        """All series tabulated against the union of x values."""
        xs = sorted({x for s in self.series for x in s.xs})
        headers = [self.x_label] + [s.name for s in self.series]
        rows = []
        for x in xs:
            row = [x]
            for s in self.series:
                row.append(s.y_at(x) if x in s.xs else "")
            rows.append(row)
        return format_table(headers, rows, title=self.title)

    def render(self, width: int = 60, height: int = 16) -> str:
        """Table plus an ASCII chart of every series."""
        return (
            self.as_table()
            + "\n\n"
            + ascii_chart(self.series, width=width, height=height,
                          y_label=self.y_label)
        )


def ascii_chart(
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Plot series as ASCII art (log-free, linear axes).

    Each series gets a marker letter (a, b, c, …); a legend follows.
    """
    points = [
        (x, y) for s in series for x, y in zip(s.xs, s.ys)
    ]
    if not points:
        return "(empty chart)"
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = min(p[1] for p in points)
    y_hi = max(p[1] for p in points)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = chr(ord("a") + index % 26)
        for x, y in zip(s.xs, s.ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = marker

    lines = [f"{y_hi:10.3f} |" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.3f} |" + "".join(canvas[-1]))
    lines.append(
        " " * 12 + f"{x_lo:<10g}" + " " * max(0, width - 20) + f"{x_hi:>10g}"
    )
    legend = "   ".join(
        f"{chr(ord('a') + i % 26)}={s.name}" for i, s in enumerate(series)
    )
    if y_label:
        legend = f"y: {y_label}   " + legend
    lines.append(legend)
    return "\n".join(lines)
