"""Service experiment driver: the numbers behind ``BENCH_service.json``.

Seven scenarios per system (MESSENGERS and the PVM baseline) sweep the
open-loop service workload across the axes the graceful-degradation
story needs:

* ``below`` — offered load at half the cluster's saturation point;
* ``overload_2x`` — twice saturation, degradation stack armed: the
  stable-brownout case (typed rejections, goodput plateau);
* ``overload_2x_nodeg`` — twice saturation with the degradation stack
  *disabled*: the metastable-collapse case (every queue full of
  already-expired work, goodput craters);
* ``loss_crash_below`` / ``loss_crash_2x`` — 5% packet loss plus a
  mid-run crash/restart of one server host;
* ``churn_below`` / ``churn_2x`` — a host joins mid-run and another
  drains.

Every scenario runs with the resilience suite armed, so the
``no-request-lost`` and ``breaker-sanity`` invariants are checked live
and at the end of every single bench run.  On top of the grid,
:func:`run_degradation_search` points the schedule searcher at the
same invariants across 100+ crash×loss schedules.

Two kinds of numbers come out, with different portability:

* The *simulated* results (goodput, outcome counts, latency
  percentiles, the event-trace digest) are bit-identical for a given
  seed on any host — the perf guard asserts they match ``BASELINE``
  exactly, which is the determinism regression test.
* ``requests_per_sec`` is wall-clock (requests resolved per second of
  real time across all scenarios, best-of-N).  It moves with the
  machine; the CI smoke guard allows a 25% regression before failing,
  same contract as the other perf suites.
"""

from __future__ import annotations

__all__ = [
    "BASELINE",
    "SCENARIOS",
    "run_degradation_search",
    "run_service_bench",
    "run_service_scenario",
]

SEED = 7
N_HOSTS = 4  # 1 frontend + 3 servers -> ~250 rps saturation
BELOW_RPS = 125.0
OVERLOAD_RPS = 500.0
DURATION_S = 0.6
LOSS_RATE = 0.05
CRASH_AT_S = 0.15
RESTART_AT_S = 0.35
JOIN_AT_S = 0.2
LEAVE_AT_S = 0.4
LEAVE_HOST = "host1"

#: Scenario knobs, in report order.  Every scenario runs once per
#: system (``messengers`` and ``pvm``).
SCENARIOS = {
    "below": {"rate": BELOW_RPS},
    "overload_2x": {"rate": OVERLOAD_RPS},
    "overload_2x_nodeg": {"rate": OVERLOAD_RPS, "degradation": False},
    "loss_crash_below": {"rate": BELOW_RPS, "loss_crash": True},
    "loss_crash_2x": {"rate": OVERLOAD_RPS, "loss_crash": True},
    "churn_below": {"rate": BELOW_RPS, "churn": True},
    "churn_2x": {"rate": OVERLOAD_RPS, "churn": True},
}

#: What the service layer measured when the committed
#: ``BENCH_service.json`` was captured.  The ``scenarios`` and
#: ``search`` sides are simulated and must reproduce bit-identically on
#: any host; ``requests_per_sec`` is wall-clock on the capture machine.
BASELINE: dict = {
    "captured": "service layer at introduction (v1.4.0)",
    "requests_per_sec": 4717.0,
    "scenarios": {
        "messengers/below": {
            "goodput_rps": 128.33,
            "latency_ms": {
                "p50": 18.25,
                "p99": 45.23,
                "p999": 45.923
            },
            "outcomes": {
                "completed": 77,
                "expired": 1,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "6701dbc0146dcc3eefcacf673681a172"
        },
        "messengers/churn_2x": {
            "goodput_rps": 183.33,
            "latency_ms": {
                "p50": 37.0,
                "p99": 49.78,
                "p999": 49.978
            },
            "outcomes": {
                "completed": 110,
                "expired": 77,
                "failed": 0,
                "rejected_admission": 42,
                "rejected_breaker": 60
            },
            "trace_digest": "b10210d15ddb46564de1a26a60c39ea5"
        },
        "messengers/churn_below": {
            "goodput_rps": 128.33,
            "latency_ms": {
                "p50": 18.75,
                "p99": 45.23,
                "p999": 45.923
            },
            "outcomes": {
                "completed": 77,
                "expired": 1,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "0d48395b7b284eb35e30c89fde044424"
        },
        "messengers/loss_crash_2x": {
            "goodput_rps": 130.0,
            "latency_ms": {
                "p50": 32.5,
                "p99": 49.844,
                "p999": 49.984
            },
            "outcomes": {
                "completed": 78,
                "expired": 85,
                "failed": 0,
                "rejected_admission": 38,
                "rejected_breaker": 88
            },
            "trace_digest": "dfcf33b0e2d3de133899d0d460e69a14"
        },
        "messengers/loss_crash_below": {
            "goodput_rps": 113.33,
            "latency_ms": {
                "p50": 24.0,
                "p99": 47.32,
                "p999": 47.932
            },
            "outcomes": {
                "completed": 68,
                "expired": 10,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "6ff603f0335efbf2aea830bb12253905"
        },
        "messengers/overload_2x": {
            "goodput_rps": 200.0,
            "latency_ms": {
                "p50": 38.0,
                "p99": 49.8,
                "p999": 49.98
            },
            "outcomes": {
                "completed": 120,
                "expired": 81,
                "failed": 0,
                "rejected_admission": 35,
                "rejected_breaker": 53
            },
            "trace_digest": "6a7ca1dc2369a9c7f449b5848fa54b99"
        },
        "messengers/overload_2x_nodeg": {
            "goodput_rps": 28.33,
            "latency_ms": {
                "p50": 29.5,
                "p99": 48.83,
                "p999": 48.983
            },
            "outcomes": {
                "completed": 17,
                "expired": 272,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "20614c7929083e4bd4d7e36388d2db20"
        },
        "pvm/below": {
            "goodput_rps": 128.33,
            "latency_ms": {
                "p50": 19.1,
                "p99": 46.23,
                "p999": 46.923
            },
            "outcomes": {
                "completed": 77,
                "expired": 1,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "b30e0c18de64edaac13568ec8a44aa6c"
        },
        "pvm/churn_2x": {
            "goodput_rps": 76.67,
            "latency_ms": {
                "p50": 37.0,
                "p99": 49.54,
                "p999": 49.954
            },
            "outcomes": {
                "completed": 46,
                "expired": 100,
                "failed": 0,
                "rejected_admission": 37,
                "rejected_breaker": 106
            },
            "trace_digest": "3e70e629044f12cd8c357e77c1d3b21b"
        },
        "pvm/churn_below": {
            "goodput_rps": 128.33,
            "latency_ms": {
                "p50": 19.125,
                "p99": 46.23,
                "p999": 46.923
            },
            "outcomes": {
                "completed": 77,
                "expired": 1,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "cd56d4affaf73b4dcf21be08b4a0fcb9"
        },
        "pvm/loss_crash_2x": {
            "goodput_rps": 50.0,
            "latency_ms": {
                "p50": 32.5,
                "p99": 48.7,
                "p999": 48.97
            },
            "outcomes": {
                "completed": 30,
                "expired": 89,
                "failed": 0,
                "rejected_admission": 39,
                "rejected_breaker": 131
            },
            "trace_digest": "cc6f1e204938de7d470edc921d011ae9"
        },
        "pvm/loss_crash_below": {
            "goodput_rps": 115.0,
            "latency_ms": {
                "p50": 28.417,
                "p99": 49.31,
                "p999": 49.931
            },
            "outcomes": {
                "completed": 69,
                "expired": 9,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "29cbd79c21ba6c38d8bdfff8153c03d2"
        },
        "pvm/overload_2x": {
            "goodput_rps": 73.33,
            "latency_ms": {
                "p50": 35.0,
                "p99": 48.853,
                "p999": 48.985
            },
            "outcomes": {
                "completed": 44,
                "expired": 103,
                "failed": 0,
                "rejected_admission": 37,
                "rejected_breaker": 105
            },
            "trace_digest": "60ddd490390c7698f90393ce4f6ca809"
        },
        "pvm/overload_2x_nodeg": {
            "goodput_rps": 36.67,
            "latency_ms": {
                "p50": 33.667,
                "p99": 49.89,
                "p999": 49.989
            },
            "outcomes": {
                "completed": 22,
                "expired": 267,
                "failed": 0,
                "rejected_admission": 0,
                "rejected_breaker": 0
            },
            "trace_digest": "37244e85028c059a8150914f538bfe09"
        }
    },
    "search": {
        "clean": True,
        "schedules_run": 100
    }
}


def run_service_scenario(
    system: str,
    rate: float,
    degradation: bool = True,
    loss_crash: bool = False,
    churn: bool = False,
    seed: int = SEED,
    duration_s: float = DURATION_S,
    arrivals: str = "poisson",
) -> dict:
    """One deterministic service run; returns simulated metrics.

    The returned dict is the workload's :meth:`stats` plus the
    whole-run event-trace digest — everything in it is a pure function
    of the arguments.
    """
    from .. import Cluster, ClusterConfig, ResiliencePolicy
    from ..faults import FaultPlan
    from ..perf import hashing_all_simulators
    from ..service import ServiceConfig

    plan = None
    if loss_crash:
        plan = (
            FaultPlan()
            .drop(LOSS_RATE)
            .crash("host2", at=CRASH_AT_S)
            .restart("host2", at=RESTART_AT_S)
        )
    config = ClusterConfig(
        n_hosts=N_HOSTS,
        service=ServiceConfig(
            arrivals=arrivals,
            rate_rps=rate,
            duration_s=duration_s,
            degradation=degradation,
        ),
        faults=plan,
        resilience=ResiliencePolicy(),
        seed=seed,
    )
    with hashing_all_simulators() as hasher:
        cluster = Cluster(config=config)
        if churn:
            cluster.service.schedule_churn(
                JOIN_AT_S, LEAVE_AT_S, LEAVE_HOST
            )
        stats = cluster.service.run(system)
    stats["trace_digest"] = hasher.hexdigest()
    return stats


def run_degradation_search(
    max_schedules: int = 120, seed: int = 0
) -> dict:
    """Hunt crash×loss schedules for degradation-invariant violations.

    Runs the MESSENGERS service workload (near saturation, short
    horizon) under every schedule the vocabulary can express — crashes
    of each server host at three points in the run, with and without
    packet loss — and reports any run where a request was silently
    lost, a breaker walked an illegal edge, or the simulation itself
    broke.  The committed baseline expects ``clean``.
    """
    from .. import (
        Cluster,
        ClusterConfig,
        ResiliencePolicy,
        ScheduleSearcher,
    )
    from ..service import ServiceConfig

    def runner(plan, run_seed):
        config = ClusterConfig(
            n_hosts=N_HOSTS,
            service=ServiceConfig(rate_rps=250.0, duration_s=0.2),
            faults=plan,
            resilience=ResiliencePolicy(),
            seed=run_seed,
        )
        Cluster(config=config).service.run("messengers")

    searcher = ScheduleSearcher(
        runner,
        hosts=["host1", "host2", "host3"],
        horizon_s=0.25,
        seed=seed,
    )
    report = searcher.search(
        max_schedules=max_schedules, max_depth=3, stop_at_first=True
    )
    return report


def run_service_bench(
    repeats: int = 2, search_schedules: int = 120
) -> dict:
    """Measure the full grid; return the ``BENCH_service.json`` blob.

    Each scenario runs ``repeats`` times per system; the simulated side
    (including the trace digest) is asserted identical across repeats —
    it cannot legally vary — and the minimum wall clock is kept.  The
    blob also records the brownout-vs-collapse verdict per system and
    the degradation-invariant schedule search.
    """
    import gc
    import time

    scenarios: dict[str, dict] = {}
    total_requests = 0
    total_wall = 0.0
    for system in ("messengers", "pvm"):
        for name, knobs in SCENARIOS.items():
            best_wall = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                gc.collect()
                start = time.perf_counter()
                run = run_service_scenario(system, **knobs)
                wall = time.perf_counter() - start
                best_wall = min(best_wall, wall)
                if result is not None and run != result:
                    raise AssertionError(
                        f"service scenario {system}/{name} was not "
                        "deterministic across repeats"
                    )
                result = run
            result["wall_s"] = round(best_wall, 6)
            scenarios[f"{system}/{name}"] = result
            total_requests += sum(result["outcomes"].values())
            total_wall += best_wall

    # Brownout vs collapse, per system: with degradation, 2x offered
    # load must sustain at least half of the system's peak goodput;
    # without it, the same load must demonstrably collapse below that
    # bar.
    verdicts: dict[str, dict] = {}
    for system in ("messengers", "pvm"):
        peak = max(
            scenarios[f"{system}/{name}"]["goodput_rps"]
            for name in SCENARIOS
            if SCENARIOS[name].get("degradation", True)
        )
        brownout = scenarios[f"{system}/overload_2x"]["goodput_rps"]
        collapse = scenarios[f"{system}/overload_2x_nodeg"]["goodput_rps"]
        verdicts[system] = {
            "peak_goodput_rps": peak,
            "brownout_fraction": round(brownout / peak, 4),
            "collapse_fraction": round(collapse / peak, 4),
            "stable_brownout": brownout >= 0.5 * peak,
            "collapse_demonstrated": collapse < 0.5 * peak,
        }

    search_report = run_degradation_search(
        max_schedules=search_schedules
    )

    requests_per_sec = (
        round(total_requests / total_wall, 1) if total_wall else 0.0
    )
    identical = all(
        all(
            scenarios.get(name, {}).get(key) == value
            for key, value in expected.items()
        )
        for name, expected in BASELINE["scenarios"].items()
    ) and search_report["clean"] == BASELINE["search"]["clean"]
    return {
        "baseline": BASELINE,
        "current": {
            "scenarios": scenarios,
            "verdicts": verdicts,
            "search": {
                "clean": search_report["clean"],
                "schedules_run": search_report["schedules_run"],
                "atom_vocabulary": search_report["atom_vocabulary"],
                "violations": search_report["violations"],
            },
            "requests_per_sec": requests_per_sec,
        },
        "vs_baseline": {
            "requests_per_sec_ratio": round(
                requests_per_sec / BASELINE["requests_per_sec"], 4
            ),
            "simulated_identical": identical,
        },
    }
