"""Fault-tolerance experiment driver: Figure 4 under packet loss.

The paper's measurements assume a perfectly reliable LAN.  This driver
re-runs the Figure-4 Mandelbrot workload with a deterministic
:class:`~repro.faults.FaultPlan` dropping a fraction of all packets, and
reports what reliability costs each system: the retransmit/ack machinery
both opt into once a lossy plan is attached, paid per message for PVM
(many small manager/worker messages) versus per hop for MESSENGERS
(fewer, larger state migrations).

Every point checks that the computed image is bit-identical to the
fault-free run — loss may slow a system down, never corrupt its answer.
"""

from __future__ import annotations

from typing import Sequence

from ..apps.mandelbrot import TaskGrid, run_messengers, run_pvm
from ..netsim import CostModel, DEFAULT_COSTS

__all__ = ["PAPER_LOSS_RATES", "run_loss_sweep"]

#: Loss rates reported in BENCH_faults.json: clean wire, a bad cable,
#: a failing switch.
PAPER_LOSS_RATES = (0.0, 0.01, 0.05)


def run_loss_sweep(
    image_size: int = 320,
    grid_size: int = 8,
    procs: int = 4,
    loss_rates: Sequence[float] = PAPER_LOSS_RATES,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Figure-4 Mandelbrot at increasing packet-loss rates.

    Returns a JSON-ready dict: per system and loss rate, the simulated
    seconds, the slowdown over the fault-free run, the fault counters,
    and whether the image stayed bit-identical.
    """
    from ..faults import FaultPlan

    grid = TaskGrid(image_size, grid_size)
    runners = {"messengers": run_messengers, "pvm": run_pvm}
    systems: dict = {}
    for name, runner in runners.items():
        baseline = runner(grid, procs, costs)
        rows = []
        for rate in loss_rates:
            if rate == 0.0:
                result, stats = baseline, {}
            else:
                result = runner(
                    grid,
                    procs,
                    costs,
                    faults=FaultPlan().drop(rate),
                    seed=seed,
                )
                stats = result.stats["faults"]
            rows.append(
                {
                    "loss_rate": rate,
                    "seconds": result.seconds,
                    "slowdown": result.seconds / baseline.seconds,
                    "image_identical": bool(
                        (result.image == baseline.image).all()
                    ),
                    "faults": dict(sorted(stats.items())),
                }
            )
        systems[name] = rows
    return {
        "workload": {
            "image_size": image_size,
            "grid": grid_size,
            "procs": procs,
            "seed": seed,
        },
        "systems": systems,
    }
