"""Fault-tolerance experiment driver: Figure 4 under packet loss.

The paper's measurements assume a perfectly reliable LAN.  This driver
re-runs the Figure-4 Mandelbrot workload with a deterministic
:class:`~repro.faults.FaultPlan` dropping a fraction of all packets, and
reports what reliability costs each system: the retransmit/ack machinery
both opt into once a lossy plan is attached, paid per message for PVM
(many small manager/worker messages) versus per hop for MESSENGERS
(fewer, larger state migrations).

Every point checks that the computed image is bit-identical to the
fault-free run — loss may slow a system down, never corrupt its answer.
"""

from __future__ import annotations

from typing import Sequence

from ..netsim import CostModel, DEFAULT_COSTS

__all__ = ["PAPER_LOSS_RATES", "run_loss_sweep"]

#: Loss rates reported in BENCH_faults.json: clean wire, a bad cable,
#: a failing switch.
PAPER_LOSS_RATES = (0.0, 0.01, 0.05)


def run_loss_sweep(
    image_size: int = 320,
    grid_size: int = 8,
    procs: int = 4,
    loss_rates: Sequence[float] = PAPER_LOSS_RATES,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
    processes: int = 1,
) -> dict:
    """Figure-4 Mandelbrot at increasing packet-loss rates.

    Returns a JSON-ready dict: per system and loss rate, the simulated
    seconds, the slowdown over the fault-free run, the fault counters,
    and whether the image stayed bit-identical.

    Every ``(system, loss_rate)`` cell is an independent simulator run,
    so with ``processes > 1`` they fan out over a
    :func:`repro.bench.sweep.run_replications` pool; the blob is
    identical either way (image identity is checked through 128-bit
    image digests, which the pool can ship between processes where
    whole arrays would be wasteful).
    """
    from .sweep import (
        Replication,
        mandelbrot_loss_replication,
        run_replications,
    )

    base = {
        "image_size": image_size,
        "grid_size": grid_size,
        "procs": procs,
        "seed": seed,
        "costs": costs,
    }
    names = ("messengers", "pvm")
    replications = [
        Replication(rid=(name, rate),
                    kwargs={**base, "system": name, "loss_rate": rate})
        for name in names
        # The fault-free baseline always runs (slowdown/identity are
        # relative to it) even when 0.0 is not in the requested rates.
        for rate in dict.fromkeys((0.0, *loss_rates))
    ]
    results = run_replications(
        mandelbrot_loss_replication, replications, processes
    )
    systems: dict = {}
    for name in names:
        baseline = results[(name, 0.0)]
        systems[name] = [
            {
                "loss_rate": rate,
                "seconds": results[(name, rate)]["seconds"],
                "slowdown": (
                    results[(name, rate)]["seconds"] / baseline["seconds"]
                ),
                "image_identical": (
                    results[(name, rate)]["image_blake2b"]
                    == baseline["image_blake2b"]
                ),
                "faults": results[(name, rate)]["faults"],
            }
            for rate in loss_rates
        ]
    return {
        "workload": {
            "image_size": image_size,
            "grid": grid_size,
            "procs": procs,
            "seed": seed,
        },
        "systems": systems,
    }
