"""Shape assertions for benchmark results.

We reproduce the paper's *shapes* — who wins, by roughly what factor,
where crossovers fall — not its absolute SPARCstation numbers.  These
helpers express those claims as checkable predicates; benchmarks assert
them, and EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "ShapeViolation",
    "crossover_interval",
    "assert_faster_beyond",
    "assert_speedup_at_least",
    "assert_roughly_monotone",
]


class ShapeViolation(AssertionError):
    """A reproduced curve does not match the paper's qualitative claim."""


def crossover_interval(
    xs: Sequence[float],
    a_ys: Sequence[float],
    b_ys: Sequence[float],
) -> Optional[tuple]:
    """Where series *a* stops being cheaper than series *b*.

    Returns ``(x_before, x_after)`` bracketing the first sign change of
    ``a - b``, or ``None`` if one series dominates throughout.
    """
    if not (len(xs) == len(a_ys) == len(b_ys)):
        raise ValueError("mismatched series lengths")
    signs = [a - b for a, b in zip(a_ys, b_ys)]
    for left in range(len(signs) - 1):
        if signs[left] == 0:
            return (xs[left], xs[left])
        if (signs[left] > 0) != (signs[left + 1] > 0):
            return (xs[left], xs[left + 1])
    return None


def assert_faster_beyond(
    xs: Sequence[float],
    fast_ys: Sequence[float],
    slow_ys: Sequence[float],
    threshold_x: float,
    tolerance: float = 1.05,
    label: str = "",
) -> None:
    """Assert ``fast`` ≤ ``slow`` × tolerance at every x ≥ threshold."""
    for x, fast, slow in zip(xs, fast_ys, slow_ys):
        if x >= threshold_x and fast > slow * tolerance:
            raise ShapeViolation(
                f"{label or 'series'}: expected faster beyond "
                f"x={threshold_x}, but at x={x} got {fast:.4f} vs "
                f"{slow:.4f} (tolerance {tolerance})"
            )


def assert_speedup_at_least(
    baseline: float, measured: float, factor: float, label: str = ""
) -> None:
    """Assert ``baseline / measured`` ≥ factor."""
    speedup = baseline / measured
    if speedup < factor:
        raise ShapeViolation(
            f"{label or 'speedup'}: expected >= {factor}x, got "
            f"{speedup:.2f}x ({baseline:.4f}s / {measured:.4f}s)"
        )


def assert_roughly_monotone(
    values: Sequence[float],
    decreasing: bool = True,
    slack: float = 1.10,
    label: str = "",
) -> None:
    """Assert a series trends one way, allowing ``slack`` local noise.

    Used for scaling curves (adding processors keeps helping) where
    strict monotonicity would be brittle.
    """
    best = values[0]
    for index, value in enumerate(values[1:], start=1):
        if decreasing:
            if value > best * slack:
                raise ShapeViolation(
                    f"{label or 'series'} not decreasing at index "
                    f"{index}: {value:.4f} after best {best:.4f}"
                )
            best = min(best, value)
        else:
            if value < best / slack:
                raise ShapeViolation(
                    f"{label or 'series'} not increasing at index "
                    f"{index}: {value:.4f} after best {best:.4f}"
                )
            best = max(best, value)
