"""Scale experiment driver: the numbers behind ``BENCH_scale.json``.

``repro bench scale`` sweeps :data:`repro.perf.scale.SCALE_GRID` —
daemon count x logical-ring size x walker-Messenger population growing
three orders of magnitude (72 -> 72,000 logical entities) — under
*both* schedulers (calendar and heap), asserting at every point that
the simulated results are bit-identical between them.

Two kinds of numbers come out, same contract as the other suites:

* The *simulated* results per point (final sim time, event count,
  remote-hop count) are deterministic — the workload draws no random
  numbers at all — and must reproduce bit-identically on any host.
  :data:`BASELINE` pins them; the CI ``scale-smoke`` job replays the
  truncated :data:`SMOKE_FACTORS` grid and fails on any divergence.
* ``events_per_sec`` is wall-clock and moves with the machine.  The
  headline claim (ROADMAP scale target) is the *ratio*: throughput at
  the 1000x point must stay within 2x of the smallest point.  CI
  additionally guards absolute regressions at the largest smoke point,
  normalised by the smallest point so host speed cancels out.
"""

from __future__ import annotations

from ..perf.scale import HOPS_PER_WALKER, SCALE_GRID, run_scale_sweep

__all__ = ["BASELINE", "SMOKE_FACTORS", "run_scale_bench"]

#: Grid factors the CI ``scale-smoke`` job replays (a truncated sweep:
#: the full 1000x point takes ~25 s of wall per run, the smoke points
#: seconds).  The largest smoke factor is the regression-gate point.
SMOKE_FACTORS = (1, 10, 100)

#: What the scale sweep measured when the committed
#: ``BENCH_scale.json`` was captured.  ``sim_seconds`` / ``events`` /
#: ``remote_hops`` are simulated and must reproduce bit-identically on
#: any host under either scheduler; ``events_per_sec`` is wall-clock on
#: the capture machine (reference only — the guard normalises).
BASELINE: dict = {
    "captured": "scale layer at introduction (v1.4.0)",
    "hops_per_walker": HOPS_PER_WALKER,
    "points": {
        "1": {
            "daemons": 4,
            "nodes": 64,
            "messengers": 8,
            "sim_seconds": 0.1060639999999998,
            "events": 2728,
            "remote_hops": 128,
        },
        "10": {
            "daemons": 8,
            "nodes": 640,
            "messengers": 80,
            "sim_seconds": 1.0121899999999733,
            "events": 27280,
            "remote_hops": 1280,
        },
        "100": {
            "daemons": 16,
            "nodes": 6400,
            "messengers": 800,
            "sim_seconds": 10.064001999998293,
            "events": 272800,
            "remote_hops": 12800,
        },
        "1000": {
            "daemons": 32,
            "nodes": 64000,
            "messengers": 8000,
            "sim_seconds": 100.61052000017939,
            "events": 2728000,
            "remote_hops": 128000,
        },
    },
}


def run_scale_bench(factors=None, repeats: int = 1) -> dict:
    """Run the scale sweep and shape the ``BENCH_scale.json`` blob.

    ``factors`` selects a subset of :data:`SCALE_GRID` (e.g. the CI
    smoke grid); ``repeats`` re-runs each point, keeping the best
    wall-clock throughput per scheduler (simulated values are asserted
    identical across repeats by the scheduler-equivalence check).
    """
    grid = [
        spec
        for spec in SCALE_GRID
        if factors is None or spec["factor"] in set(factors)
    ]
    report = run_scale_sweep(grid=grid)
    for _ in range(max(0, repeats - 1)):
        again = run_scale_sweep(grid=grid)
        for best, fresh in zip(report["points"], again["points"]):
            for key in ("sim_seconds", "events", "remote_hops"):
                if best[key] != fresh[key]:
                    raise AssertionError(
                        f"repeat diverged on {key} at factor "
                        f"{best['factor']}: {best[key]} != {fresh[key]}"
                    )
            for kind, evps in fresh["events_per_sec"].items():
                if evps > best["events_per_sec"][kind]:
                    best["events_per_sec"][kind] = evps
                    best["wall_s"][kind] = fresh["wall_s"][kind]
        if len(report["points"]) >= 2:
            small, large = report["points"][0], report["points"][-1]
            report["largest_vs_smallest_evps"] = {
                kind: large["events_per_sec"][kind]
                / small["events_per_sec"][kind]
                for kind in large["events_per_sec"]
            }
            report["within_2x"] = all(
                ratio >= 0.5
                for ratio in report["largest_vs_smallest_evps"].values()
            )
    for point in report["points"]:
        golden = BASELINE["points"].get(str(point["factor"]))
        if golden is not None:
            for key in ("sim_seconds", "events", "remote_hops"):
                if point[key] != golden[key]:
                    raise AssertionError(
                        f"simulated {key} at factor {point['factor']} "
                        f"diverged from BASELINE: {point[key]!r} != "
                        f"{golden[key]!r}"
                    )
    return {"suite": "scale", "baseline": BASELINE, "current": report}
