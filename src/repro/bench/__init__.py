"""Benchmark harness: sweep drivers, reporting, and shape assertions.

One driver per paper artifact (see DESIGN.md §5 for the experiment
index); ``benchmarks/`` wires these into pytest-benchmark targets that
print the regenerated tables/figures and assert the paper's qualitative
claims.
"""

from .faults_experiments import PAPER_LOSS_RATES, run_loss_sweep
from .mandelbrot_experiments import (
    MandelbrotSweep,
    PAPER_GRIDS,
    PAPER_PROCESSOR_COUNTS,
    best_case_comparison,
    run_figure,
)
from .matmul_experiments import (
    FIG12A_CPU_SCALE,
    FIG12B_CPU_SCALE,
    MatmulSweep,
    PAPER_BLOCK_SIZES_2X2,
    PAPER_BLOCK_SIZES_3X3,
    blocking_speedup_model,
    run_block_size_sweep,
)
from .conversations_experiments import (
    run_conversations_bench,
    run_conversations_scenario,
)
from .mailbox_experiments import run_mailbox_bench, run_mailbox_scenario
from .perf_experiments import run_perf_report
from .service_experiments import (
    run_degradation_search,
    run_service_bench,
    run_service_scenario,
)
from .reporting import Figure, Series, ascii_chart, format_table
from .resilience_experiments import (
    HEARTBEAT_MISS_SWEEP,
    PHI_THRESHOLD_SWEEP,
    run_detection_sweep,
    run_recovery_comparison,
)
from .scale_experiments import run_scale_bench
from .shapes import (
    ShapeViolation,
    assert_faster_beyond,
    assert_roughly_monotone,
    assert_speedup_at_least,
    crossover_interval,
)
from .sweep import (
    Experiment,
    Replication,
    run_replications,
    seed_sweep_experiment,
)

__all__ = [
    "Experiment",
    "Replication",
    "FIG12A_CPU_SCALE",
    "FIG12B_CPU_SCALE",
    "Figure",
    "HEARTBEAT_MISS_SWEEP",
    "MandelbrotSweep",
    "MatmulSweep",
    "PAPER_BLOCK_SIZES_2X2",
    "PAPER_BLOCK_SIZES_3X3",
    "PAPER_GRIDS",
    "PAPER_LOSS_RATES",
    "PAPER_PROCESSOR_COUNTS",
    "PHI_THRESHOLD_SWEEP",
    "Series",
    "ShapeViolation",
    "ascii_chart",
    "assert_faster_beyond",
    "assert_roughly_monotone",
    "assert_speedup_at_least",
    "best_case_comparison",
    "blocking_speedup_model",
    "crossover_interval",
    "format_table",
    "run_block_size_sweep",
    "run_conversations_bench",
    "run_conversations_scenario",
    "run_detection_sweep",
    "run_figure",
    "run_loss_sweep",
    "run_degradation_search",
    "run_mailbox_bench",
    "run_mailbox_scenario",
    "run_perf_report",
    "run_recovery_comparison",
    "run_replications",
    "run_scale_bench",
    "run_service_bench",
    "run_service_scenario",
    "seed_sweep_experiment",
]
