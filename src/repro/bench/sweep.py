"""Process-parallel replication sweeps with a deterministic merge.

Every experiment in this package is a bag of independent simulator
runs — seeds, loss rates, detector thresholds — and each run is
single-threaded by construction, so the obvious way to spend a
multi-core host is one replication per process.  The only hazard is
*ordering*: a pool completes work in whatever order the scheduler
feels like, and a results blob assembled in completion order would
differ from the serial run.

:func:`run_replications` removes that hazard by construction.  Each
:class:`Replication` carries an explicit id; the pool returns
``(id, result)`` pairs in arbitrary order; the merge re-keys them by id
and emits them in *input* order.  A 4-process pool therefore produces a
blob byte-identical to the serial loop (pinned by
``tests/test_perf_determinism.py``).

Tasks must be module-level callables (the pool pickles them), and their
results must be picklable — return JSON-safe summaries (seconds, fault
counters, result-array digests), not simulator objects.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable, Sequence

__all__ = [
    "Replication",
    "Experiment",
    "run_replications",
    "mandelbrot_loss_replication",
    "seed_sweep_experiment",
]


@dataclass(frozen=True)
class Replication:
    """One unit of a sweep: a hashable id plus the task's kwargs."""

    rid: Any
    kwargs: dict = field(default_factory=dict)


def _invoke(job):
    task, rid, kwargs = job
    return rid, task(**kwargs)


def _pool_context():
    # fork is cheapest and inherits the already-imported stack; fall
    # back to the platform default where it is unavailable.
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_replications(
    task: Callable[..., Any],
    replications: Sequence[Replication],
    processes: int = 1,
) -> dict:
    """Run every replication; return ``{rid: result}`` in input order.

    ``processes <= 1`` runs the plain serial loop in this process.
    Anything larger fans the replications out over a multiprocessing
    pool — deliberately via ``imap_unordered``, so completion order is
    genuinely arbitrary and the id-keyed merge below is what restores
    determinism, not scheduling luck.  ``task`` must be a module-level
    (picklable) callable.
    """
    replications = list(replications)
    rids = [rep.rid for rep in replications]
    if len(set(rids)) != len(rids):
        raise ValueError("replication ids must be unique")
    jobs = [(task, rep.rid, rep.kwargs) for rep in replications]
    if processes <= 1 or len(jobs) <= 1:
        by_rid = dict(_invoke(job) for job in jobs)
    else:
        with _pool_context().Pool(min(processes, len(jobs))) as pool:
            by_rid = dict(pool.imap_unordered(_invoke, jobs))
    return {rid: by_rid[rid] for rid in rids}


@dataclass
class Experiment:
    """A named, replicated experiment runnable serial or pooled.

    ``run(processes=N)`` produces a JSON-ready report whose content is
    independent of ``N`` — the pool only changes how fast it arrives.
    """

    name: str
    task: Callable[..., Any]
    replications: Sequence[Replication]

    def run(self, processes: int = 1) -> dict:
        results = run_replications(self.task, self.replications, processes)
        return {
            "experiment": self.name,
            "replications": [
                {
                    "id": list(rep.rid)
                    if isinstance(rep.rid, tuple) else rep.rid,
                    "params": dict(rep.kwargs),
                    "result": results[rep.rid],
                }
                for rep in self.replications
            ],
        }


# -- concrete tasks ----------------------------------------------------------


def mandelbrot_loss_replication(
    system: str = "messengers",
    image_size: int = 64,
    grid_size: int = 4,
    procs: int = 3,
    loss_rate: float = 0.05,
    seed: int = 7,
    costs=None,
) -> dict:
    """One (possibly lossy) Figure-4-style Mandelbrot run.

    Returns a picklable summary: simulated seconds, the fault counters,
    and a 128-bit digest of the image bytes (enough to check
    bit-identity across replications without shipping arrays between
    processes).
    """
    from ..apps.mandelbrot import TaskGrid, run_messengers, run_pvm
    from ..faults import FaultPlan
    from ..netsim import DEFAULT_COSTS

    runner = run_messengers if system == "messengers" else run_pvm
    grid = TaskGrid(image_size, grid_size)
    costs = DEFAULT_COSTS if costs is None else costs
    if loss_rate > 0.0:
        result = runner(
            grid, procs, costs, faults=FaultPlan().drop(loss_rate),
            seed=seed,
        )
        faults = dict(sorted(result.stats["faults"].items()))
    else:
        result = runner(grid, procs, costs)
        faults = {}
    return {
        "seconds": result.seconds,
        "image_blake2b": blake2b(
            result.image.tobytes(), digest_size=16
        ).hexdigest(),
        "faults": faults,
    }


def seed_sweep_experiment(
    systems: Sequence[str] = ("messengers", "pvm"),
    seeds: Sequence[int] = (1, 2, 3, 4),
    loss_rate: float = 0.05,
    image_size: int = 64,
    grid_size: int = 4,
    procs: int = 3,
) -> Experiment:
    """Lossy Mandelbrot replicated over ``systems x seeds``.

    The default is the 8-replication sweep the pool-identity acceptance
    test runs serial and with 4 processes.
    """
    replications = [
        Replication(
            rid=(system, seed),
            kwargs={
                "system": system,
                "image_size": image_size,
                "grid_size": grid_size,
                "procs": procs,
                "loss_rate": loss_rate,
                "seed": seed,
            },
        )
        for system in systems
        for seed in seeds
    ]
    return Experiment(
        name="mandelbrot-loss-seeds",
        task=mandelbrot_loss_replication,
        replications=replications,
    )
