"""Experiment drivers for the matrix-multiplication artifacts.

* Figure 12(a): 2×2 processor grid (110 MHz hosts), block-size sweep;
* Figure 12(b): 3×3 processor grid (170 MHz hosts), block-size sweep;
* the §3.2 in-text blocking claim (1500×1500 into 9 blocks ≈ 13%).

Each sweep point runs MESSENGERS, PVM, naive-sequential and
blocked-sequential on the same matrices and reports simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..apps.matmul import (
    make_matrices,
    multiply_flops,
    multiply_working_set,
    run_blocked,
    run_messengers,
    run_naive,
    run_pvm,
)
from ..netsim import CostModel, DEFAULT_COSTS
from .reporting import Figure

__all__ = [
    "FIG12A_CPU_SCALE",
    "FIG12B_CPU_SCALE",
    "PAPER_BLOCK_SIZES_2X2",
    "PAPER_BLOCK_SIZES_3X3",
    "MatmulSweep",
    "run_block_size_sweep",
    "blocking_speedup_model",
]

#: 110 MHz SPARCstation 5 = the calibration baseline.
FIG12A_CPU_SCALE = 1.0
#: 170 MHz SPARCstation 5 (the paper's 3×3 runs) ≈ 1.55× the 110 MHz.
FIG12B_CPU_SCALE = 1.55

#: Block sizes swept for the 2×2 grid (n = 2s), paper plots up to 500.
PAPER_BLOCK_SIZES_2X2 = (25, 50, 100, 150, 200, 300, 400, 500)
#: Block sizes swept for the 3×3 grid (n = 3s), paper plots up to 500.
PAPER_BLOCK_SIZES_3X3 = (10, 20, 50, 100, 200, 300, 500)


@dataclass
class MatmulSweep:
    """Raw results of one Figure-12 panel."""

    m: int
    cpu_scale: float
    #: block size -> {"messengers"|"pvm"|"naive"|"blocked": seconds}
    points: dict = field(default_factory=dict)

    def seconds(self, block_size: int, system: str) -> float:
        return self.points[block_size][system]

    @property
    def block_sizes(self) -> list:
        return sorted(self.points)

    def series(self, system: str) -> list:
        return [self.points[s][system] for s in self.block_sizes]

    def as_figure(self) -> Figure:
        figure = Figure(
            title=(
                f"Matrix multiplication on {self.m}x{self.m} processors "
                f"(cpu x{self.cpu_scale}; simulated seconds)"
            ),
            x_label="block size",
            y_label="seconds",
        )
        for system in ("messengers", "pvm", "blocked", "naive"):
            series = figure.new_series(system)
            for block_size in self.block_sizes:
                series.add(block_size, self.points[block_size][system])
        return figure


def run_block_size_sweep(
    m: int,
    block_sizes: Sequence[int],
    cpu_scale: float = 1.0,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
) -> MatmulSweep:
    """Run one panel of Figure 12 over the given block sizes."""
    sweep = MatmulSweep(m=m, cpu_scale=cpu_scale)
    for s in block_sizes:
        n = m * s
        a, b = make_matrices(n, seed=seed)
        sweep.points[s] = {
            "messengers": run_messengers(
                a, b, m, costs=costs, cpu_scale=cpu_scale
            ).seconds,
            "pvm": run_pvm(a, b, m, costs=costs, cpu_scale=cpu_scale)
            .seconds,
            "naive": run_naive(a, b, costs=costs, cpu_scale=cpu_scale)
            .seconds,
            "blocked": run_blocked(
                a, b, m, costs=costs, cpu_scale=cpu_scale
            ).seconds,
        }
    return sweep


def blocking_speedup_model(
    n: int = 1500, m: int = 3, costs: CostModel = DEFAULT_COSTS
) -> dict:
    """The §3.2 in-text claim, computed from the cost model alone.

    Partitioning an ``n × n`` multiply into ``m × m`` blocks improves
    cache locality; the paper measured ≈13% for 1500×1500 into 9 blocks
    of 500×500 on a 110 MHz SPARCstation 5.  Costs are closed-form, so
    no 1500×1500 arithmetic is needed.
    """
    s = n // m
    naive_seconds = costs.compute_seconds(multiply_flops(n), 3.0 * n * n * 8)
    blocked_seconds = (m ** 3) * costs.compute_seconds(
        multiply_flops(s), multiply_working_set(s)
    )
    return {
        "n": n,
        "m": m,
        "block": s,
        "naive_s": naive_seconds,
        "blocked_s": blocked_seconds,
        "speedup_pct": (naive_seconds / blocked_seconds - 1.0) * 100.0,
    }
