"""Replicated mailboxes: replica sets, quorum writes, gossip repair.

One mailbox per logical node is how :mod:`repro.mailbox` ships — which
means a partition that isolates the home daemon silently stalls every
saga built on that mailbox until the link heals and the retransmitters
catch up.  This layer spreads each mailbox over a *replica set* of
daemons (``ReplicationConfig.factor`` of them, the home daemon first):

* **writes** fan out to every replica over the existing reliable
  mailbox port and are *quorum-acked* — the write counts as durable
  once a majority of replicas spooled it, so either side of a
  partition keeps accepting mail as long as it holds a quorum;
* **anti-entropy** runs as a periodic gossip driver: while any replica
  set is divergent ("dirty"), each live daemon exchanges per-mailbox
  stage maps (mail id -> lifecycle stage, summarized by a version
  vector of per-origin write sequences) with a rotating co-replica
  peer, and the three-leg syn/ack/push protocol read-repairs both
  sides — bodies ride the wire only for records the other side lacks;
* **promotion**: when the home daemon dies, the mailbox layer's
  failure hook re-homes the node onto the surviving replica with the
  most complete spool instead of replaying everything from the ledger
  — only mail no surviving replica ever acked is re-sent.

Everything is deterministic: daemons are iterated in registry order,
dirty sets and stage maps in sorted order, and peer rotation is a
per-daemon round-robin — a (seed, plan) pair replays bit-identically,
which the TraceHasher properties in ``tests/test_replication.py`` pin
down.  With ``replication=None`` (or factor 1) none of this exists:
no driver process, no extra packets, no extra events — the disabled
path is byte-identical to the pre-replication mailbox layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..des import Store
from ..netsim import Packet

__all__ = [
    "ReplicaState",
    "ReplicationConfig",
    "ReplicationService",
    "merge_stages",
    "merge_vv",
    "vv_dominates",
]

#: Fixed per-gossip-message envelope in bytes.
GOSSIP_ENVELOPE_BYTES = 64
#: Wire size of one (mail id, stage) record in a gossip map.
RECORD_BYTES = 16
#: Wire size of one mailbox uid key in a gossip map.
UID_BYTES = 8


# -- version vectors ---------------------------------------------------------


def merge_vv(a: dict, b: dict) -> dict:
    """Join two version vectors: pointwise max over origin components.

    This is the join of a lattice, so it is commutative, associative,
    and idempotent — the properties that make anti-entropy safe to run
    in any order, any number of times (proven by the Hypothesis
    suite in ``tests/test_replication.py``).
    """
    merged = dict(a)
    for origin, seq in b.items():
        if seq > merged.get(origin, 0):
            merged[origin] = seq
    return merged


def vv_dominates(a: dict, b: dict) -> bool:
    """True if ``a`` has seen at least everything ``b`` has."""
    return all(a.get(origin, 0) >= seq for origin, seq in b.items())


def merge_stages(a: dict, b: dict) -> dict:
    """Join two stage maps: union by mail id, max lifecycle stage.

    Same lattice structure as :func:`merge_vv` — lifecycle stages only
    move forward, so the pointwise max is the truth both replicas
    converge to.
    """
    merged = dict(a)
    for mid, stage in b.items():
        if stage > merged.get(mid, -1):
            merged[mid] = stage
    return merged


class ReplicaState:
    """One daemon's durable spool bookkeeping for one mailbox.

    ``stages`` maps mail id -> highest lifecycle stage this replica
    knows (presence = the record is durably spooled here); ``vv`` is
    the version vector summarizing which writes it has seen, keyed by
    write origin.  Two replicas of a mailbox are convergent exactly
    when their stage maps are equal.
    """

    __slots__ = ("stages", "vv")

    def __init__(self):
        self.stages: dict[int, int] = {}
        self.vv: dict[str, int] = {}

    def observe(self, origin: str, oseq: int) -> None:
        if oseq > self.vv.get(origin, 0):
            self.vv[origin] = oseq

    def digest(self) -> str:
        """Lifecycle digest of this replica's spool (the gossip unit of
        comparison; mirrors ``MailboxService.lifecycle_digest``)."""
        blob = repr(sorted(self.stages.items())).encode("utf-8")
        return hashlib.sha1(blob).hexdigest()

    def __repr__(self) -> str:
        return f"<ReplicaState records={len(self.stages)} vv={self.vv}>"


# -- configuration -----------------------------------------------------------


@dataclass(frozen=True)
class ReplicationConfig:
    """Typed configuration for mailbox replication (facade plumbing).

    ``factor`` is the replica-set size per mailbox (1 = replication
    off — the service arms nothing and stays byte-identical to a
    replication-free build).  ``quorum`` is how many replica acks make
    a write durable (default: majority).  ``gossip_interval_s`` is the
    anti-entropy cadence while any replica set is divergent; the
    driver parks (and stops keeping the run alive) once everything
    converged.  ``exchange_timeout_s`` bounds one syn/ack/push
    exchange: a peer that has not answered within it may be re-tried,
    and after ``max_exchange_failures`` consecutive expiries the pair
    is suspended until a ``heal`` is observed — so an unhealed
    partition degrades to a loud non-convergence instead of an
    infinite gossip spin.
    """

    factor: int = 2
    quorum: Optional[int] = None
    gossip_interval_s: float = 0.02
    exchange_timeout_s: float = 0.5
    max_exchange_failures: int = 3

    def __post_init__(self):
        if self.factor < 1:
            raise ValueError(
                f"replication factor must be >= 1, got {self.factor}"
            )
        if self.quorum is not None and not (
            1 <= self.quorum <= self.factor
        ):
            raise ValueError(
                f"quorum must be in [1, factor={self.factor}], "
                f"got {self.quorum}"
            )
        if self.gossip_interval_s <= 0:
            raise ValueError(
                "gossip interval must be positive, "
                f"got {self.gossip_interval_s}"
            )
        if self.exchange_timeout_s <= 0:
            raise ValueError(
                "exchange timeout must be positive, "
                f"got {self.exchange_timeout_s}"
            )
        if self.max_exchange_failures < 1:
            raise ValueError(
                "need at least one exchange failure before suspension, "
                f"got {self.max_exchange_failures}"
            )

    @property
    def effective_quorum(self) -> int:
        """The write quorum actually enforced (majority by default)."""
        if self.quorum is not None:
            return self.quorum
        return self.factor // 2 + 1


# -- the service -------------------------------------------------------------


class ReplicationService:
    """Replica sets + quorum writes + gossip anti-entropy for one
    :class:`~repro.mailbox.MailboxService`.

    Constructed by the mailbox service itself when its config carries a
    :class:`ReplicationConfig` with factor >= 2; everything flows
    through the existing mailbox port and pumps (payload kinds
    ``rmail`` for replicated writes, ``repl`` for gossip), so the
    reliable transport, fault injection, and cost accounting all apply
    unchanged.
    """

    def __init__(self, service, config: ReplicationConfig):
        self.service = service
        self.system = service.system
        self.sim = service.sim
        self.config = config
        self.quorum = config.effective_quorum
        #: daemon name -> mailbox uid -> ReplicaState.
        self._replicas: dict[str, dict[int, ReplicaState]] = {}
        #: mailbox uid -> ordered replica daemons (home first at birth).
        self._sets: dict[int, list[str]] = {}
        #: Mailboxes whose replicas are known-divergent.
        self._dirty: set[int] = set()
        #: mail id -> Mail, for materializing gossip-carried records.
        self._mail_records: dict = {}
        #: mail id -> daemons that durably acked the write.
        self._acks: dict[int, set[str]] = {}
        #: mail id -> daemons the write was ever dispatched to.
        self._inflight: dict[int, set[str]] = {}
        #: mail id -> virtual time the write reached quorum.
        self.quorum_times: dict[int, float] = {}
        #: (mailbox uid, origin daemon) -> last write sequence.
        self._oseq: dict[tuple[int, str], int] = {}
        #: (initiator, peer) -> start time of the outstanding exchange.
        self._outstanding: dict[tuple[str, str], float] = {}
        #: (initiator, peer) -> consecutive expired exchanges.
        self._fails: dict[tuple[str, str], int] = {}
        #: Per-daemon round-robin cursor over gossip peers.
        self._rot: dict[str, int] = {}
        #: Virtual time the cluster last became fully convergent.
        self.converged_s: Optional[float] = None
        self.counts: dict[str, int] = {}
        self._wake: Store = Store(self.sim)
        self.system.network.add_heal_listener(self._on_heal)
        self.sim.process(self._gossip_driver(), daemon=True)

    # -- accounting ---------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count(f"replication.{key}", n)

    def _gauge_divergence(self) -> None:
        metrics = self.sim.obs
        if metrics is not None:
            metrics.gauge("replication.divergence").set(
                len(self._dirty)
            )

    def stats(self) -> dict:
        """JSON-friendly snapshot for benches and ``repro stats``."""
        return {
            "factor": self.config.factor,
            "quorum": self.quorum,
            "mailboxes": len(self._sets),
            "dirty": len(self._dirty),
            "converged_s": self.converged_s,
            "counts": dict(sorted(self.counts.items())),
        }

    # -- membership ---------------------------------------------------------

    def _is_live(self, name: str) -> bool:
        daemon = self.system.daemons.get(name)
        return (
            daemon is not None
            and not daemon.dead
            and not daemon.retired
        )

    def _state(self, daemon: str, uid: int) -> ReplicaState:
        boxes = self._replicas.setdefault(daemon, {})
        state = boxes.get(uid)
        if state is None:
            state = boxes[uid] = ReplicaState()
        return state

    def replica_set(self, uid: int) -> list[str]:
        """The replica daemons of mailbox ``uid`` (built on first
        write: the home daemon, then the next live daemons in registry
        order until the factor is met)."""
        members = self._sets.get(uid)
        if members is not None:
            return members
        box = self.service._boxes[uid]
        home = box.node.daemon
        members = [home]
        names = self.system.daemon_names
        start = names.index(home) if home in names else 0
        for step in range(1, len(names)):
            if len(members) >= self.config.factor:
                break
            candidate = names[(start + step) % len(names)]
            if candidate not in members and self._is_live(candidate):
                members.append(candidate)
        self._sets[uid] = members
        for member in members:
            self._state(member, uid)
        return members

    def digests(self, uid: int) -> dict[str, str]:
        """Per-replica lifecycle digests of mailbox ``uid``."""
        return {
            member: self._state(member, uid).digest()
            for member in self._sets.get(uid, [])
        }

    # -- dirtiness / convergence --------------------------------------------

    def is_convergent(self, uid: int) -> bool:
        members = self._sets.get(uid)
        if not members:
            return True
        first = self._state(members[0], uid).stages
        return all(
            self._state(member, uid).stages == first
            for member in members[1:]
        )

    def _after_change(self, uid: int) -> None:
        """Re-check one mailbox's convergence and book-keep the dirty
        set (waking the gossip driver on the empty -> dirty edge)."""
        if self.is_convergent(uid):
            if uid in self._dirty:
                self._dirty.discard(uid)
                if not self._dirty:
                    self.converged_s = self.sim.now
            self._gauge_divergence()
            return
        if uid not in self._dirty:
            was_clean = not self._dirty
            self._dirty.add(uid)
            self._gauge_divergence()
            if was_clean:
                self._wake.put(1)

    def _nudge(self) -> None:
        """Wake a parked driver after external progress (an exchange
        completing, a heal, a membership refill)."""
        if self._dirty:
            self._wake.put(1)

    # -- the write path -----------------------------------------------------

    def dispatch(self, mail, origin: str) -> None:
        """Fan one write out to every replica of its mailbox.

        Stamps the logical write origin + per-(mailbox, origin)
        sequence on first dispatch (the version-vector component);
        re-dispatches skip replicas that already acked.
        """
        uid = mail.to_uid
        members = self.replica_set(uid)
        if not mail.origin:
            mail.origin = origin
            key = (uid, origin)
            seq = self._oseq.get(key, 0) + 1
            self._oseq[key] = seq
            mail.oseq = seq
        box = self.service._boxes[uid]
        mail.src_daemon = origin
        mail.dst_daemon = box.node.daemon
        acked = self._acks.get(mail.id, ())
        inflight = self._inflight.setdefault(mail.id, set())
        for target in members:
            if target in acked:
                continue
            inflight.add(target)
            self.count("replica_dispatches")
            self.system.network.enqueue(Packet(
                src=origin,
                dst=target,
                port=self.service.port_name,
                payload=("rmail", mail),
                size_bytes=mail.size_bytes,
            ))

    def on_rmail(self, daemon_name: str, mail) -> None:
        """A replicated write arrived at one replica's pump."""
        uid = mail.to_uid
        members = self._sets.get(uid)
        if members is None or daemon_name not in members:
            # The set was refilled while this copy was in flight; the
            # current members got (or will gossip) their own copies.
            self.count("stale_replica_copies")
            return
        self._mail_records.setdefault(mail.id, mail)
        state = self._state(daemon_name, uid)
        if mail.id not in state.stages:
            state.stages[mail.id] = 0  # durably spooled, stage "sent"
            state.observe(mail.origin, mail.oseq)
            self.count("replica_accepts")
            self._record_ack(daemon_name, mail.id)
        else:
            self.count("replica_duplicates")
        box = self.service._boxes.get(uid)
        if box is not None and box.node.daemon == daemon_name:
            # This replica is the home: spool into the visible mailbox
            # (pops the ledger, advances the canonical lifecycle).
            self.service._deliver_now(box, mail)
        self._after_change(uid)

    def _record_ack(self, daemon_name: str, mail_id: int) -> None:
        acks = self._acks.setdefault(mail_id, set())
        if daemon_name in acks:
            return
        acks.add(daemon_name)
        if len(acks) == self.quorum:
            self.quorum_times[mail_id] = self.sim.now
            self.count("quorum_writes")

    def note_stage(self, uid: int, mail) -> None:
        """The home advanced a mail's lifecycle; record it at the home
        replica so gossip propagates the advancement."""
        members = self._sets.get(uid)
        if not members:
            return
        box = self.service._boxes.get(uid)
        home = box.node.daemon if box is not None else members[0]
        target = home if home in members else members[0]
        state = self._state(target, uid)
        previous = state.stages.get(mail.id, -1)
        if mail.stage > previous:
            if previous < 0:
                state.observe(mail.origin, mail.oseq)
                self._record_ack(target, mail.id)
            state.stages[mail.id] = mail.stage
            self._after_change(uid)

    # -- failure / churn ----------------------------------------------------

    def _replacement(self, members: list[str]) -> Optional[str]:
        for name in self.system.daemon_names:
            if name not in members and self._is_live(name):
                return name
        return None

    def _refill(self, uid: int, leaver: str) -> None:
        """Drop ``leaver`` from one replica set, backfill a live
        daemon, and promote a surviving replica to home if needed."""
        members = self._sets[uid]
        members.remove(leaver)
        states = self._replicas.get(leaver)
        if states is not None:
            states.pop(uid, None)
        if len(members) < self.config.factor:
            replacement = self._replacement(members)
            if replacement is not None:
                members.append(replacement)
                self._state(replacement, uid)
        box = self.service._boxes.get(uid)
        if box is not None and members:
            if box.node.daemon not in members:
                # The messengers layer re-homed the node round-robin;
                # override: promote the surviving replica with the most
                # complete spool (ties -> replica-set order), which
                # already holds the mail durably.
                best = max(
                    members,
                    key=lambda m: (
                        len(self._state(m, uid).stages),
                        -members.index(m),
                    ),
                )
                self.system.logical.rehome(box.node, best)
                self.count("replicas_promoted")
            self._drain_to_home(uid)
        self._after_change(uid)

    def _drain_to_home(self, uid: int) -> None:
        """Sync the home replica with the visible mailbox both ways:
        deliver replica-held mail the spool lacks, and backfill the
        replica state from the durable spool the new home inherited
        (the spool follows the node through re-homing — PR 6's
        durability model)."""
        box = self.service._boxes.get(uid)
        if box is None:
            return
        home = box.node.daemon
        if home not in self._sets.get(uid, ()):
            return
        state = self._state(home, uid)
        for mid in sorted(state.stages):
            if mid not in box._mails:
                mail = self._mail_records.get(mid)
                if mail is not None:
                    self.service._deliver_now(box, mail)
        for mail in box.mails:
            previous = state.stages.get(mail.id, -1)
            if mail.stage > previous:
                if previous < 0:
                    state.observe(mail.origin, mail.oseq)
                    self._record_ack(home, mail.id)
                state.stages[mail.id] = mail.stage

    def _forget_pairs(self, name: str) -> None:
        for key in [k for k in self._outstanding if name in k]:
            del self._outstanding[key]
        for key in [k for k in self._fails if name in k]:
            del self._fails[key]

    def on_host_failure(self, name: str) -> None:
        """Failure announcement: promote replicas, then replay only the
        ledger entries no surviving replica ever acked."""
        for uid in sorted(self._sets):
            if name in self._sets[uid]:
                self._refill(uid, name)
        self._forget_pairs(name)
        service = self.service
        for mail in list(service._pending.values()):
            targets = self._inflight.get(mail.id, ())
            if name != mail.src_daemon and name not in targets:
                continue
            acked = self._acks.get(mail.id, ())
            if any(self._is_live(d) for d in acked):
                # A surviving replica holds it durably; promotion /
                # gossip completes the visible delivery without a
                # full re-send from the origin.
                self.count("ledger_replays_avoided")
                self._after_change(mail.to_uid)
                continue
            service.count("redispatched")
            self.dispatch(mail, service._first_live_daemon())
        self._nudge()

    def on_daemon_retired(self, name: str) -> None:
        """Graceful churn: same membership refill + promotion as a
        failure; the mailbox layer's own retire hook replays the
        ledger entries whose home was the leaver."""
        for uid in sorted(self._sets):
            if name in self._sets[uid]:
                self._refill(uid, name)
        self._forget_pairs(name)
        self._nudge()

    def _on_heal(self, a: str, b: str) -> None:
        """Carrier came back on a cut link: lift pair suspensions and
        let the driver resume converging immediately."""
        self._outstanding.clear()
        self._fails.clear()
        self.count("heals_observed")
        self._nudge()

    # -- gossip anti-entropy ------------------------------------------------

    def _gossip_driver(self):
        """The anti-entropy heartbeat.

        Parks (keeping the run quiescable) while every replica set is
        convergent or no peer is reachable-and-unsuspended; while
        dirty and sendable, ticks a *foreground* timeout each round so
        the run cannot end with known-divergent replicas that gossip
        could still repair.
        """
        interval = self.config.gossip_interval_s
        while True:
            if not self._dirty or not self._has_sendable(self.sim.now):
                yield self._wake.get()
                continue
            yield self.sim.timeout(interval)
            if self._dirty:
                self._run_round()

    def _live_daemons(self) -> list[str]:
        return [
            name
            for name in self.system.daemon_names
            if self._is_live(name)
        ]

    def _suspended(self, pair: tuple[str, str]) -> bool:
        return (
            self._fails.get(pair, 0)
            >= self.config.max_exchange_failures
        )

    def _peer_for(
        self, daemon: str, now: float, commit: bool
    ) -> Optional[str]:
        """The next gossip peer for ``daemon``, round-robin over live
        co-replicas of its dirty mailboxes.  ``commit`` advances the
        rotation and books expired-exchange failures; a dry run only
        answers reachability."""
        uids = [
            uid
            for uid in sorted(self._dirty)
            if daemon in self._sets.get(uid, ())
        ]
        if not uids:
            return None
        peers = sorted({
            member
            for uid in uids
            for member in self._sets[uid]
            if member != daemon and self._is_live(member)
        })
        if not peers:
            return None
        start = self._rot.get(daemon, 0) % len(peers)
        for step in range(len(peers)):
            peer = peers[(start + step) % len(peers)]
            pair = (daemon, peer)
            if self._suspended(pair):
                continue
            started = self._outstanding.get(pair)
            if started is not None:
                if now - started < self.config.exchange_timeout_s:
                    continue
                if commit:
                    self._fails[pair] = self._fails.get(pair, 0) + 1
                    self.count("exchanges_expired")
                    if self._suspended(pair):
                        continue
            if commit:
                self._rot[daemon] = (start + step + 1) % len(peers)
            return peer
        return None

    def _has_sendable(self, now: float) -> bool:
        return any(
            self._peer_for(name, now, commit=False) is not None
            for name in self._live_daemons()
        )

    def _run_round(self) -> None:
        now = self.sim.now
        sent = 0
        for name in self._live_daemons():
            peer = self._peer_for(name, now, commit=True)
            if peer is None:
                continue
            self._send_syn(name, peer, now)
            sent += 1
        if sent:
            self.count("gossip_rounds")

    def _shared_dirty(self, daemon: str, peer: str) -> list[int]:
        return [
            uid
            for uid in sorted(self._dirty)
            if daemon in self._sets.get(uid, ())
            and peer in self._sets[uid]
        ]

    def _send_gossip(self, src: str, dst: str, message, size: int):
        if not self._is_live(src):
            # The crash landed under the pump mid-exchange: the reply
            # dies with the host.  Gossip is idempotent, so a later
            # round simply repeats the exchange from a survivor.
            self.count("gossip_lost_to_crash")
            return
        self.count("gossip_bytes", size)
        self.system.network.enqueue(Packet(
            src=src,
            dst=dst,
            port=self.service.port_name,
            payload=("repl", message),
            size_bytes=size,
        ))

    def _send_syn(self, daemon: str, peer: str, now: float) -> None:
        self._outstanding[(daemon, peer)] = now
        maps = {
            uid: dict(self._state(daemon, uid).stages)
            for uid in self._shared_dirty(daemon, peer)
        }
        size = GOSSIP_ENVELOPE_BYTES + sum(
            UID_BYTES + RECORD_BYTES * len(records)
            for records in maps.values()
        )
        self.count("gossip_syns")
        self._send_gossip(daemon, peer, ("syn", daemon, maps), size)

    def on_gossip(self, daemon_name: str, message) -> None:
        kind = message[0]
        if kind == "syn":
            _, frm, maps = message
            self._handle_syn(daemon_name, frm, maps)
        elif kind == "ack":
            _, frm, updates, bodies, want = message
            self._handle_ack(daemon_name, frm, updates, bodies, want)
        else:
            _, frm, updates, bodies = message
            self._handle_push(daemon_name, frm, updates, bodies)

    def _apply_records(
        self,
        daemon: str,
        uid: int,
        records: dict,
        bodies: Optional[dict],
    ) -> list[int]:
        """Merge incoming ``{mail id: stage}`` records into one
        replica; returns the ids whose bodies are still needed.

        New records require their body on the wire (the ``bodies``
        map); stage advancements of known records do not.  The merge
        is the stage-map join — idempotent, so replayed or crossed
        gossip messages are harmless.
        """
        if daemon not in self._sets.get(uid, ()):
            return []
        state = self._state(daemon, uid)
        missing: list[int] = []
        changed = False
        for mid in sorted(records):
            stage = records[mid]
            previous = state.stages.get(mid, -1)
            if previous < 0:
                mail = bodies.get(mid) if bodies else None
                if mail is None:
                    missing.append(mid)
                    continue
                self._mail_records.setdefault(mid, mail)
                state.observe(mail.origin, mail.oseq)
                self._record_ack(daemon, mid)
                state.stages[mid] = stage
                self.count("repairs")
                changed = True
            elif stage > previous:
                state.stages[mid] = stage
                self.count("repairs")
                changed = True
        box = self.service._boxes.get(uid)
        if box is not None and box.node.daemon == daemon:
            # Read-repair reached the home replica: complete the
            # visible delivery of anything the spool lacks.
            for mid in sorted(state.stages):
                if mid not in box._mails:
                    mail = self._mail_records.get(mid)
                    if mail is not None:
                        self.service._deliver_now(box, mail)
        if changed:
            self.count("mailboxes_repaired")
        self._after_change(uid)
        return missing

    def _handle_syn(self, here: str, frm: str, maps: dict) -> None:
        """Peer side of an exchange: absorb the initiator's stage
        advancements, then answer with everything it is missing plus a
        want-list for records we lack the bodies of."""
        updates: dict[int, dict] = {}
        bodies: dict = {}
        want: dict[int, list[int]] = {}
        for uid in sorted(maps):
            theirs = maps[uid]
            if here not in self._sets.get(uid, ()):
                continue
            missing = self._apply_records(here, uid, theirs, None)
            if missing:
                want[uid] = missing
            mine = self._state(here, uid).stages
            diff = {
                mid: stage
                for mid, stage in mine.items()
                if theirs.get(mid, -1) < stage
            }
            if diff:
                updates[uid] = diff
                for mid in sorted(diff):
                    if mid not in theirs:
                        mail = self._mail_records.get(mid)
                        if mail is not None:
                            bodies[mid] = mail
        size = (
            GOSSIP_ENVELOPE_BYTES
            + sum(
                UID_BYTES + RECORD_BYTES * len(diff)
                for diff in updates.values()
            )
            + sum(mail.size_bytes for mail in bodies.values())
            + sum(
                UID_BYTES * len(mids) for mids in want.values()
            )
        )
        self.count("gossip_acks")
        self._send_gossip(
            here, frm, ("ack", here, updates, bodies, want), size
        )

    def _handle_ack(
        self, here: str, frm: str, updates, bodies, want
    ) -> None:
        """Initiator side: the exchange answered — merge the peer's
        records, then push the bodies it asked for."""
        self._outstanding.pop((here, frm), None)
        self._fails.pop((here, frm), None)
        for uid in sorted(updates):
            self._apply_records(here, uid, updates[uid], bodies)
        if want:
            push_updates: dict[int, dict] = {}
            push_bodies: dict = {}
            for uid in sorted(want):
                if here not in self._sets.get(uid, ()):
                    continue
                mine = self._state(here, uid).stages
                have = {
                    mid: mine[mid]
                    for mid in want[uid]
                    if mid in mine and mid in self._mail_records
                }
                if have:
                    push_updates[uid] = have
                    for mid in sorted(have):
                        push_bodies[mid] = self._mail_records[mid]
            if push_updates:
                size = (
                    GOSSIP_ENVELOPE_BYTES
                    + sum(
                        UID_BYTES + RECORD_BYTES * len(records)
                        for records in push_updates.values()
                    )
                    + sum(
                        mail.size_bytes
                        for mail in push_bodies.values()
                    )
                )
                self.count("gossip_pushes")
                self._send_gossip(
                    here,
                    frm,
                    ("push", here, push_updates, push_bodies),
                    size,
                )
        self._nudge()

    def _handle_push(self, here: str, frm: str, updates, bodies):
        for uid in sorted(updates):
            self._apply_records(here, uid, updates[uid], bodies)
        self._nudge()

    def __repr__(self) -> str:
        return (
            f"<ReplicationService factor={self.config.factor} "
            f"quorum={self.quorum} mailboxes={len(self._sets)} "
            f"dirty={len(self._dirty)}>"
        )
