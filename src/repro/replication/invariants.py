"""Replication invariants for the resilience monitor.

Armed automatically by the facade whenever a cluster carries both a
resilience policy and a replicated mailbox service; both follow the
:class:`repro.resilience.Invariant` protocol (``check`` on every
monitor tick, ``check_final`` at quiescence) and return a description
string on violation.
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Invariant

__all__ = ["QuorumLiveness", "ReplicaConvergence"]


class ReplicaConvergence(Invariant):
    """All replicas of every mailbox converge to the same spool.

    In-run: no replica may know a mail the canonical mailbox layer has
    never minted, nor record a lifecycle stage beyond the canonical
    one — replicas trail the truth, they never invent it.  Final: at
    quiescence every replica set must have identical stage maps
    (equal lifecycle digests) — the anti-entropy obligation.
    """

    name = "replica-convergence"

    def __init__(self, service):
        self.service = service
        self.replication = service.replication

    def _canonical_stage(self, uid: int, mid: int) -> Optional[int]:
        box = self.service._boxes.get(uid)
        if box is None:
            return None
        mail = box._mails.get(mid)
        return None if mail is None else mail.stage

    def check(self, now: float) -> Optional[str]:
        repl = self.replication
        if repl is None:
            return None
        for uid in sorted(repl._sets):
            for member in repl._sets[uid]:
                state = repl._state(member, uid)
                for mid in sorted(state.stages):
                    if mid not in repl._mail_records:
                        return (
                            f"replica {member} of mailbox uid={uid} "
                            f"records unknown mail id={mid}"
                        )
                    canonical = self._canonical_stage(uid, mid)
                    if (
                        canonical is not None
                        and state.stages[mid] > canonical
                    ):
                        return (
                            f"replica {member} of mailbox uid={uid} "
                            f"is ahead of the canonical lifecycle for "
                            f"mail id={mid}: replica stage "
                            f"{state.stages[mid]} > canonical "
                            f"{canonical}"
                        )
        return None

    def check_final(self, now: float) -> Optional[str]:
        repl = self.replication
        if repl is None:
            return None
        for uid in sorted(repl._sets):
            digests = repl.digests(uid)
            if len(set(digests.values())) > 1:
                detail = ", ".join(
                    f"{member}={digest[:12]}"
                    for member, digest in sorted(digests.items())
                )
                return (
                    f"mailbox uid={uid} replicas diverged at "
                    f"quiescence: {detail}"
                )
        return None


class QuorumLiveness(Invariant):
    """Every mailbox keeps a write quorum of live replicas.

    Checks that each replica set holds at least ``quorum``
    known-live daemons — a daemon whose crash nobody has announced yet
    still counts (detection-mode clusters learn of failures with a
    lag; membership repair happens *at* the announcement, so flagging
    the gap in between would be a false positive).
    """

    name = "quorum-liveness"

    def __init__(self, service):
        self.service = service
        self.replication = service.replication

    def _known_live(self, name: str) -> bool:
        repl = self.replication
        daemon = repl.system.daemons.get(name)
        if daemon is None or daemon.retired:
            return False
        if not daemon.dead:
            return True
        return name in repl.system.network.unannounced_crashes

    def _shortfall(self) -> Optional[str]:
        repl = self.replication
        if repl is None:
            return None
        for uid in sorted(repl._sets):
            members = repl._sets[uid]
            live = [m for m in members if self._known_live(m)]
            if len(live) < repl.quorum:
                return (
                    f"mailbox uid={uid} lost its write quorum: "
                    f"{len(live)}/{repl.quorum} known-live replicas "
                    f"(members: {members})"
                )
        return None

    def check(self, now: float) -> Optional[str]:
        return self._shortfall()

    def check_final(self, now: float) -> Optional[str]:
        return self._shortfall()
