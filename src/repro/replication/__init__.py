"""Replicated mailboxes: quorum writes + gossip anti-entropy.

The robustness layer the mobile-agent follow-up literature asks for:
each durable mailbox is spread over a replica set of daemons, writes
are quorum-acked through the existing reliable transport, and a
deterministic gossip driver read-repairs divergent replicas — so both
sides of a partition keep accepting mail and provably converge after
``heal``.  Hung off :class:`~repro.mailbox.MailboxConfig` via
:class:`ReplicationConfig`; ``None`` (or factor 1) arms nothing and is
byte-identical to a replication-free build.
"""

from .core import (
    ReplicaState,
    ReplicationConfig,
    ReplicationService,
    merge_stages,
    merge_vv,
    vv_dominates,
)
from .invariants import QuorumLiveness, ReplicaConvergence

__all__ = [
    "QuorumLiveness",
    "ReplicaConvergence",
    "ReplicaState",
    "ReplicationConfig",
    "ReplicationService",
    "merge_stages",
    "merge_vv",
    "vv_dominates",
]
