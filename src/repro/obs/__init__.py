"""``repro.obs`` — the cross-cutting observability layer.

The paper's argument is quantitative: message passing loses to
MESSENGERS where pack/unpack copies and daemon traffic dominate, and
loses the advantage where per-instruction script interpretation does
(§2.1, Figures 4–7/12).  This package makes those terms *visible*: a
:class:`MetricsRegistry` attached to a simulator
(``sim.metrics = MetricsRegistry()``) collects

* hierarchically named counters / gauges / histograms from every
  subsystem (``des.events_executed``, ``netsim.eth.bytes``,
  ``mp.pack.bytes_copied``, ``messengers.hops_remote``,
  ``mcl.vm.instructions{opcode}``, ``gvt.rollbacks``, …);
* a **cost ledger** attributing every virtual-time charge to one of
  the paper's categories (:data:`CATEGORIES`): compute, copies, wire,
  interpretation, dispatch, protocol, gvt;
* **spans** and **instants** on the simulated clock, one track per
  host plus one for the Ethernet segment.

Exporters turn one run into a Chrome ``trace_event`` JSON
(:func:`to_chrome_trace`), a JSONL event log (:func:`to_jsonl`), or an
ASCII cost-breakdown report (:func:`cost_breakdown` /
:func:`format_breakdown`).  ``python -m repro stats`` wires it all
together for the paper's workloads.

Everything is opt-in: with no registry attached the instrumented hot
paths reduce to a single ``is None`` test (the overhead guard
``benchmarks/test_obs_overhead.py`` holds the enabled path under 5%
and the disabled path at the noise floor).
"""

from .export import (
    cost_breakdown,
    dump_chrome_trace,
    dump_jsonl,
    format_breakdown,
    format_counters,
    to_chrome_trace,
    to_jsonl,
)
from .registry import (
    CATEGORIES,
    CAT_COMPUTE,
    CAT_COPIES,
    CAT_DISPATCH,
    CAT_GVT,
    CAT_INTERP,
    CAT_PROTOCOL,
    CAT_WIRE,
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    InstantEvent,
    MetricNameError,
    MetricsRegistry,
    Span,
)

__all__ = [
    "CATEGORIES",
    "CAT_COMPUTE",
    "CAT_COPIES",
    "CAT_DISPATCH",
    "CAT_GVT",
    "CAT_INTERP",
    "CAT_PROTOCOL",
    "CAT_WIRE",
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricNameError",
    "MetricsRegistry",
    "Span",
    "cost_breakdown",
    "dump_chrome_trace",
    "dump_jsonl",
    "format_breakdown",
    "format_counters",
    "to_chrome_trace",
    "to_jsonl",
]
