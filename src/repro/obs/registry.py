"""The metrics registry: counters, gauges, histograms, spans, and the
virtual-time cost ledger.

One :class:`MetricsRegistry` observes one simulation.  It is attached to
a :class:`~repro.des.core.Simulator` (``sim.metrics = registry``) and
every layer of the reproduction — the DES kernel, the Ethernet model,
the PVM workalike, the MESSENGERS daemons and VM, both GVT engines —
reports into it through three channels:

* **metrics** — hierarchically named counters / gauges / fixed-bucket
  histograms (``des.events_executed``, ``netsim.eth.bytes``,
  ``mp.pack.bytes_copied``, ``messengers.hops_remote``, …), plus
  labelled counter families (``mcl.vm.instructions{opcode=...}``);
* **the cost ledger** — every virtual-time charge attributed to one of
  the paper's cost categories (:data:`CATEGORIES`): buffer copies,
  wire occupancy, script interpretation, compute, daemon dispatch,
  protocol overhead, GVT synchronization.  The ledger is what turns an
  end-to-end simulated-seconds number into the decomposition the paper
  argues from ("where does the time go?");
* **spans / instants** — timestamped intervals and point events on the
  *simulated* clock, grouped by track (one track per host, one for the
  wire), exportable as a Chrome ``trace_event`` JSON
  (:mod:`repro.obs.export`).

When a registry is absent (``sim.metrics is None``) instrumented code
skips recording entirely; when a registry is *disabled*
(``MetricsRegistry(enabled=False)``) every accessor returns a shared
null object whose methods are no-ops, so instrumentation points can be
written unconditionally at zero cost.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Optional, Sequence

__all__ = [
    "CATEGORIES",
    "CAT_COMPUTE",
    "CAT_COPIES",
    "CAT_DISPATCH",
    "CAT_GVT",
    "CAT_INTERP",
    "CAT_PROTOCOL",
    "CAT_WIRE",
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricNameError",
    "MetricsRegistry",
    "Span",
]

# -- cost categories ---------------------------------------------------------

#: Numpy kernels / native-mode functions (the useful work).
CAT_COMPUTE = "compute"
#: Memory copies: PVM pack/unpack marshalling, local messenger-state moves.
CAT_COPIES = "copies"
#: Occupancy of the shared Ethernet medium.
CAT_WIRE = "wire"
#: MCL bytecode interpretation + native-call overhead.
CAT_INTERP = "interpretation"
#: Daemon bookkeeping: hop dispatch, logical node/link table updates.
CAT_DISPATCH = "dispatch"
#: Per-message software overhead: endpoint syscalls, pvm_send/recv
#: bookkeeping, task spawning.
CAT_PROTOCOL = "protocol"
#: Virtual-time synchronization: min-reduction rounds, state saving.
CAT_GVT = "gvt"

#: Every cost category, in report order.  The first four are the
#: decomposition the paper's argument rests on (§2.1/§3).
CATEGORIES = (
    CAT_COMPUTE,
    CAT_COPIES,
    CAT_WIRE,
    CAT_INTERP,
    CAT_DISPATCH,
    CAT_PROTOCOL,
    CAT_GVT,
)


class MetricNameError(ValueError):
    """A metric name collides with an existing metric or subtree."""


# -- metric kinds ------------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        self.value += n

    def snapshot_value(self):
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down (queue depths, utilization)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def snapshot_value(self):
        return self.value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are upper bounds in increasing order; an implicit
    +inf bucket catches the overflow.  ``count`` and ``sum`` track the
    whole stream, so averages survive bucketing.

    Optional **reservoir mode** (``reservoir=k`` with an ``rng``): a
    uniform sample of ``k`` observations is maintained alongside the
    buckets via Vitter's Algorithm R — O(1) per observation, one
    ``randrange`` draw once the reservoir is full.  :meth:`quantile`
    then reads exact order statistics of the sample instead of
    interpolating inside a bucket, which matters for tail quantiles
    (p99.9) of long-tailed latency streams.  Pass a named stream from
    :class:`~repro.des.RngRegistry` as ``rng`` so the sample — and
    every quantile derived from it — is deterministic per root seed.
    """

    kind = "histogram"
    __slots__ = (
        "name", "buckets", "counts", "count", "sum",
        "reservoir_size", "_reservoir", "_rng", "_sorted",
    )

    #: Default bounds for second-valued observations (1µs .. 10s).
    DEFAULT_BUCKETS = (
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
    )

    def __init__(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        reservoir: int = 0,
        rng=None,
    ):
        bounds = tuple(buckets) if buckets is not None else self.DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name}: buckets must be strictly increasing"
            )
        if reservoir < 0:
            raise ValueError(
                f"histogram {name}: reservoir must be >= 0, got {reservoir}"
            )
        if reservoir and rng is None:
            raise ValueError(
                f"histogram {name}: reservoir mode needs an rng (pass a "
                "named RngRegistry stream for determinism)"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.reservoir_size = int(reservoir)
        self._reservoir: Optional[list] = [] if reservoir else None
        self._rng = rng
        self._sorted: Optional[list] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        reservoir = self._reservoir
        if reservoir is not None:
            if len(reservoir) < self.reservoir_size:
                reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.reservoir_size:
                    reservoir[slot] = value
                else:
                    return  # sample unchanged; keep the sort cache
            self._sorted = None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1).

        Bucket mode (default) is Prometheus-style: find the bucket
        holding the target rank and interpolate linearly inside it (the
        lowest bucket interpolates from 0; the +inf bucket returns its
        lower bound — the estimate saturates).  Reservoir mode
        interpolates between the sample's order statistics instead.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self._reservoir:
            ordered = self._sorted
            if ordered is None:
                ordered = self._sorted = sorted(self._reservoir)
            position = q * (len(ordered) - 1)
            low = int(position)
            frac = position - low
            if frac == 0.0 or low + 1 >= len(ordered):
                return ordered[low]
            return ordered[low] + (ordered[low + 1] - ordered[low]) * frac
        rank = q * self.count
        seen = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                if index == len(self.buckets):  # +inf bucket: saturate
                    return self.buckets[-1]
                lo = self.buckets[index - 1] if index > 0 else 0.0
                hi = self.buckets[index]
                return lo + (hi - lo) * max(0.0, rank - seen) / n
            seen += n
        return self.buckets[-1]

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+inf" if index == len(self.buckets) else repr(bound)): n
                for index, (bound, n) in enumerate(
                    zip(self.buckets + (float("inf"),), self.counts)
                )
            },
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} sum={self.sum:g}>"


class CounterFamily:
    """A set of counters distinguished by one label (e.g. per opcode).

    Snapshot keys render Prometheus-style:
    ``mcl.vm.instructions{opcode=CALL}``.
    """

    kind = "counter_family"
    __slots__ = ("name", "label", "values")

    def __init__(self, name: str, label: str):
        self.name = name
        self.label = label
        self.values: dict[str, float] = {}

    def inc(self, label_value: str, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        self.values[label_value] = self.values.get(label_value, 0) + n

    def merge(self, counts: dict) -> None:
        """Bulk-add a {label_value: n} dict (hot-loop friendly)."""
        for label_value, n in counts.items():
            self.values[label_value] = self.values.get(label_value, 0) + n

    def get(self, label_value: str) -> float:
        return self.values.get(label_value, 0)

    def snapshot_value(self):
        return dict(sorted(self.values.items()))

    def __repr__(self) -> str:
        return f"<CounterFamily {self.name}{{{self.label}}}>"


# -- null objects (disabled registry) ---------------------------------------


class _NullMetric:
    """Absorbs every metric operation at near-zero cost."""

    kind = "null"
    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, *args, **kwargs) -> None:
        pass

    def dec(self, *args, **kwargs) -> None:
        pass

    def set(self, *args, **kwargs) -> None:
        pass

    def observe(self, *args, **kwargs) -> None:
        pass

    def merge(self, *args, **kwargs) -> None:
        pass

    def get(self, *args, **kwargs) -> int:
        return 0

    def snapshot_value(self):
        return 0


_NULL_METRIC = _NullMetric()


# -- spans & instants ---------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """One interval on the simulated clock, on one track.

    ``track`` groups spans into Chrome-trace threads (one per host plus
    one for the wire); ``category`` is the cost category charged (or
    ``None`` for purely visual spans that were already charged
    elsewhere, component by component).
    """

    track: str
    name: str
    category: Optional[str]
    t0: float
    t1: float
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class InstantEvent:
    """One point event on the simulated clock.

    This is the shared event model: :class:`~repro.messengers.trace.Tracer`
    consumes these (it renders them as its ``TraceEvent`` records) and
    the Chrome exporter emits them as instant ('i') events.
    """

    track: str
    name: str
    t: float
    args: Optional[dict] = None


# -- the registry -------------------------------------------------------------


class MetricsRegistry:
    """Counters + gauges + histograms + spans + the cost ledger.

    Parameters
    ----------
    enabled:
        When False every accessor returns a shared null metric and all
        record/charge calls are no-ops (the zero-cost-when-disabled
        contract).
    span_capacity:
        Maximum number of spans/instants retained (each), so tracing a
        long run cannot exhaust memory; overflow is counted in
        ``spans_dropped`` / ``instants_dropped``.  The ledger and all
        metrics keep exact totals regardless.
    opcode_counts:
        Record per-opcode VM instruction counts
        (``mcl.vm.instructions{opcode}``).  This is the one
        instrumentation point inside the VM's per-instruction loop, so
        it costs more than every other hook combined; off by default,
        switched on by ``python -m repro stats --opcodes`` and tests.
    """

    def __init__(
        self,
        enabled: bool = True,
        span_capacity: int = 200_000,
        opcode_counts: bool = False,
    ):
        self.enabled = enabled
        self.span_capacity = span_capacity
        self.opcode_counts = opcode_counts if enabled else False
        self._metrics: dict[str, Any] = {}
        #: Every dot-path that is an *ancestor* of a registered metric.
        self._branches: set[str] = set()
        #: category -> attributed virtual seconds (the cost ledger).
        self.ledger: dict[str, float] = {}
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.spans_dropped = 0
        self.instants_dropped = 0

    # -- registration -------------------------------------------------------

    def _register(self, name: str, factory, kind: str, *args):
        if not self.enabled:
            return _NULL_METRIC
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise MetricNameError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind}"
                )
            return existing
        if name in self._branches:
            raise MetricNameError(
                f"metric name {name!r} collides with an existing "
                "metric subtree (it is a prefix of another metric)"
            )
        if not name or name.startswith(".") or name.endswith("."):
            raise MetricNameError(f"bad metric name {name!r}")
        parts = name.split(".")
        ancestors = [".".join(parts[:i]) for i in range(1, len(parts))]
        for ancestor in ancestors:
            if ancestor in self._metrics:
                raise MetricNameError(
                    f"metric name {name!r} collides with existing "
                    f"metric {ancestor!r} (hierarchical prefix)"
                )
        metric = factory(name, *args)
        self._metrics[name] = metric
        self._branches.update(ancestors)
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._register(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(name, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._register(name, Histogram, "histogram", buckets)

    def counter_family(self, name: str, label: str) -> CounterFamily:
        """Get or create the labelled counter family ``name``."""
        return self._register(name, CounterFamily, "counter_family", label)

    def count(self, name: str, n: float = 1) -> None:
        """Convenience: get-or-create counter ``name`` and add ``n``."""
        if not self.enabled:
            return
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.counter(name)
        metric.inc(n)

    def observe(self, name: str, value: float) -> None:
        """Convenience: get-or-create histogram ``name``, observe."""
        if not self.enabled:
            return
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.histogram(name)
        metric.observe(value)

    # -- ledger & spans -----------------------------------------------------

    def charge(self, category: str, seconds: float) -> None:
        """Attribute ``seconds`` of virtual time to a cost category."""
        if not self.enabled or seconds == 0:
            return
        self.ledger[category] = self.ledger.get(category, 0.0) + seconds

    def span(
        self,
        track: str,
        name: str,
        category: Optional[str],
        t0: float,
        t1: float,
        args: Optional[dict] = None,
        charge: bool = True,
    ) -> None:
        """Record one interval; charges its category unless told not to.

        Pass ``charge=False`` for envelope spans whose components were
        already charged individually (e.g. a daemon slice charged as
        interpretation + compute + copies).
        """
        if not self.enabled:
            return
        if charge and category is not None and t1 > t0:
            self.ledger[category] = (
                self.ledger.get(category, 0.0) + (t1 - t0)
            )
        if len(self.spans) >= self.span_capacity:
            self.spans_dropped += 1
            return
        self.spans.append(Span(track, name, category, t0, t1, args))

    def instant(
        self, track: str, name: str, t: float, args: Optional[dict] = None
    ) -> Optional[InstantEvent]:
        """Record a point event; returns it (None when not recorded)."""
        if not self.enabled:
            return None
        event = InstantEvent(track, name, t, args)
        self.record_instant(event)
        return event

    def record_instant(self, event: InstantEvent) -> None:
        """Record an already-built :class:`InstantEvent`."""
        if not self.enabled:
            return
        if len(self.instants) >= self.span_capacity:
            self.instants_dropped += 1
            return
        self.instants.append(event)

    # -- introspection ------------------------------------------------------

    def get(self, name: str):
        """The registered metric called ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    @property
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str):
        """Shortcut: the snapshot value of one metric (0 if absent)."""
        metric = self._metrics.get(name)
        return metric.snapshot_value() if metric is not None else 0

    def snapshot(self) -> dict:
        """Deterministic name -> value dump of every metric.

        Families expand to ``name{label=value}`` entries so the result
        is a flat, sorted, JSON-friendly dict.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, CounterFamily):
                for label_value, n in sorted(metric.values.items()):
                    out[f"{name}{{{metric.label}={label_value}}}"] = n
            else:
                out[name] = metric.snapshot_value()
        return out

    def ledger_total(self) -> float:
        """Sum of all attributed virtual seconds."""
        return sum(self.ledger.values())

    def tracks(self) -> list[str]:
        """Every track that appears in spans/instants, sorted."""
        names = {s.track for s in self.spans}
        names.update(e.track for e in self.instants)
        return sorted(names)

    def clear(self) -> None:
        """Drop all recorded data (metric registrations survive)."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0
            elif isinstance(metric, Gauge):
                metric.value = 0
            elif isinstance(metric, Histogram):
                metric.counts = [0] * (len(metric.buckets) + 1)
                metric.count = 0
                metric.sum = 0.0
            elif isinstance(metric, CounterFamily):
                metric.values.clear()
        self.ledger.clear()
        self.spans.clear()
        self.instants.clear()
        self.spans_dropped = 0
        self.instants_dropped = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<MetricsRegistry {state} metrics={len(self._metrics)} "
            f"spans={len(self.spans)} "
            f"ledger={self.ledger_total():.6f}s>"
        )
