"""Exporters for the observability layer.

Three output formats, all produced from one :class:`MetricsRegistry`:

* :func:`to_chrome_trace` / :func:`dump_chrome_trace` — the Chrome
  ``trace_event`` JSON format, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.  Each simulated host (and the Ethernet
  segment) becomes a thread; spans become complete ('X') events and
  instants become instant ('i') events.  Simulated seconds map to
  trace microseconds.
* :func:`to_jsonl` / :func:`dump_jsonl` — a line-per-record JSON event
  log (spans, instants, then one ``snapshot`` and one ``ledger``
  record), convenient for ad-hoc ``jq``/pandas analysis.
* :func:`cost_breakdown` / :func:`format_breakdown` /
  :func:`format_counters` — the per-run ASCII report: the attributable
  virtual-time decomposition (copies / wire / interpretation / compute
  / …) the paper's whole argument is phrased in, plus a metrics dump.

The breakdown's accounting identity: every attributed second lies on
some resource timeline (a host CPU or the shared wire), so with
``n_tracks`` resources over ``elapsed`` simulated seconds,

    sum(categories) + idle == n_tracks * elapsed

holds to float precision whenever every charge in the run went through
an instrumented path — which ``tests/test_obs.py`` asserts.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from .registry import CATEGORIES, MetricsRegistry

__all__ = [
    "cost_breakdown",
    "dump_chrome_trace",
    "dump_jsonl",
    "format_breakdown",
    "format_counters",
    "to_chrome_trace",
    "to_jsonl",
]

_SECONDS_TO_US = 1e6


# -- Chrome trace_event -------------------------------------------------------


def to_chrome_trace(registry: MetricsRegistry, pid: int = 1) -> dict:
    """Render the registry as a Chrome ``trace_event`` JSON object.

    Returns the standard ``{"traceEvents": [...], ...}`` envelope with
    thread-name metadata so tracks show up with their host names.
    """
    events: list[dict] = []
    tracks = registry.tracks()
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for span in registry.spans:
        event = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": span.t0 * _SECONDS_TO_US,
            "dur": span.duration * _SECONDS_TO_US,
            "pid": pid,
            "tid": tids[span.track],
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for instant in registry.instants:
        event = {
            "name": instant.name,
            "cat": "instant",
            "ph": "i",
            "s": "t",  # thread-scoped
            "ts": instant.t * _SECONDS_TO_US,
            "pid": pid,
            "tid": tids[instant.track],
        }
        if instant.args:
            event["args"] = instant.args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": "simulated virtual time (1 virtual second = 1s)",
            "dropped_spans": registry.spans_dropped,
            "dropped_instants": registry.instants_dropped,
        },
    }


def dump_chrome_trace(
    registry: MetricsRegistry, destination: Union[str, IO[str]]
) -> int:
    """Write the Chrome trace JSON to a path or file object.

    Returns the number of trace events written.
    """
    trace = to_chrome_trace(registry)
    if hasattr(destination, "write"):
        json.dump(trace, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
    return len(trace["traceEvents"])


# -- JSONL event log ----------------------------------------------------------


def to_jsonl(registry: MetricsRegistry) -> list[str]:
    """The registry as a list of JSON lines (spans, instants, summary)."""
    lines: list[str] = []
    for span in registry.spans:
        record = {
            "type": "span",
            "track": span.track,
            "name": span.name,
            "category": span.category,
            "t0": span.t0,
            "t1": span.t1,
        }
        if span.args:
            record["args"] = span.args
        lines.append(json.dumps(record, sort_keys=True))
    for instant in registry.instants:
        record = {
            "type": "instant",
            "track": instant.track,
            "name": instant.name,
            "t": instant.t,
        }
        if instant.args:
            record["args"] = instant.args
        lines.append(json.dumps(record, sort_keys=True))
    lines.append(
        json.dumps(
            {"type": "snapshot", "metrics": registry.snapshot()},
            sort_keys=True,
        )
    )
    lines.append(
        json.dumps(
            {"type": "ledger", "categories": dict(sorted(registry.ledger.items()))},
            sort_keys=True,
        )
    )
    return lines


def dump_jsonl(
    registry: MetricsRegistry, destination: Union[str, IO[str]]
) -> int:
    """Write the JSONL event log; returns the number of lines."""
    lines = to_jsonl(registry)
    text = "\n".join(lines) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(lines)


# -- ASCII reporting ----------------------------------------------------------


def cost_breakdown(
    registry: MetricsRegistry,
    elapsed_s: float,
    n_tracks: Optional[int] = None,
) -> dict:
    """The per-category virtual-time decomposition of one run.

    ``elapsed_s`` is the run's simulated duration; ``n_tracks`` is the
    number of serial resources the charges occupied (hosts + the shared
    wire; defaults to the number of span tracks seen, or 1).  Returns::

        {
          "elapsed_s": ..., "n_tracks": ..., "timeline_s": ...,
          "accounted_s": ...,  # sum over categories
          "idle_s": ...,       # timeline - accounted (>= 0)
          "categories": {category: {"seconds": s, "percent": p}, ...},
        }

    ``percent`` is of the total timeline, so all categories plus idle
    sum to 100.
    """
    if n_tracks is None:
        n_tracks = max(1, len(registry.tracks()))
    timeline = elapsed_s * n_tracks
    accounted = registry.ledger_total()
    idle = max(0.0, timeline - accounted)
    categories: dict[str, dict] = {}
    ordered = [c for c in CATEGORIES if c in registry.ledger]
    ordered += sorted(set(registry.ledger) - set(CATEGORIES))
    for category in ordered:
        seconds = registry.ledger[category]
        categories[category] = {
            "seconds": seconds,
            "percent": 100.0 * seconds / timeline if timeline else 0.0,
        }
    return {
        "elapsed_s": elapsed_s,
        "n_tracks": n_tracks,
        "timeline_s": timeline,
        "accounted_s": accounted,
        "idle_s": idle,
        "categories": categories,
    }


def _format_table(headers, rows, title=None) -> str:
    """Minimal fixed-width table (kept local: repro.bench imports the
    application packages, which transitively import this module)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in cells))
        if cells
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [] if title is None else [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_breakdown(breakdown: dict, title: Optional[str] = None) -> str:
    """Render :func:`cost_breakdown` output as an ASCII table."""
    rows = [
        [category, data["seconds"], f"{data['percent']:.2f}%"]
        for category, data in breakdown["categories"].items()
    ]
    timeline = breakdown["timeline_s"]
    idle_pct = 100.0 * breakdown["idle_s"] / timeline if timeline else 0.0
    rows.append(["idle", breakdown["idle_s"], f"{idle_pct:.2f}%"])
    rows.append(["total", timeline, "100.00%"])
    header = title or (
        f"virtual-time cost breakdown "
        f"({breakdown['elapsed_s']:.6f}s elapsed x "
        f"{breakdown['n_tracks']} resources)"
    )
    return _format_table(
        ["category", "virtual_seconds", "share"], rows, title=header
    )


def format_counters(
    registry: MetricsRegistry, prefix: str = "", limit: Optional[int] = None
) -> str:
    """Render the (optionally prefix-filtered) metric snapshot."""
    snapshot = registry.snapshot()
    rows = []
    for name, value in snapshot.items():
        if prefix and not name.startswith(prefix):
            continue
        if isinstance(value, dict):  # histogram: show count/sum only
            rows.append([name, f"n={value['count']} sum={value['sum']:g}"])
        elif isinstance(value, float):
            rows.append([name, f"{value:g}"])
        else:
            rows.append([name, str(value)])
    if limit is not None and len(rows) > limit:
        rows = rows[:limit] + [["...", f"({len(rows) - limit} more)"]]
    if not rows:
        return "(no metrics)"
    return _format_table(["metric", "value"], rows)
