"""PVM-style tasks and their programming interface.

A task is a generator function running on a simulated host.  Its first
argument is a :class:`TaskContext`, which exposes the PVM-flavoured
operations (``spawn``, ``send``, ``recv``, ``mcast``, groups, …).  All
communication charges the cost model's pack/copy/wire terms, so the
message-passing side of every benchmark pays exactly the costs the paper
attributes to it.

All context operations that take time are generators and must be invoked
as ``yield from ctx.op(...)`` (or ``result = yield from ...``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from ..des import FilterStore
from ..netsim import Packet
from .buffers import PackBuffer, UnpackBuffer

__all__ = [
    "ANY",
    "Message",
    "SYSTEM",
    "Task",
    "TaskContext",
    "TaskKilled",
    "NO_PARENT",
]

#: Wildcard for ``recv``'s source and tag filters (PVM uses -1).
ANY = -1

#: Parent tid of tasks started from the outside (PVM returns PvmNoParent).
NO_PARENT = -1

#: Source "tid" of pvmd-generated notification messages (pvm_notify).
SYSTEM = -2


class TaskKilled(Exception):
    """Raised inside a task that was killed via ``pvm_kill``."""


@dataclass(slots=True)
class Message:
    """A received message: source tid, tag, and the unpack buffer."""

    src: int
    tag: int
    buffer: UnpackBuffer

    @property
    def nbytes(self) -> int:
        return self.buffer.nbytes


class Task:
    """Bookkeeping record for one running task."""

    def __init__(self, tid: int, host, behavior_name: str, parent: int):
        self.tid = tid
        self.host = host
        self.behavior_name = behavior_name
        self.parent = parent
        self.mailbox = FilterStore(host.sim)
        self.process = None  # set by the system after spawning
        self.exited = False
        self.exit_value: Any = None
        #: Ensures pvm_notify watchers hear about this task exactly once.
        self.exit_notified = False

    def __repr__(self) -> str:
        state = "exited" if self.exited else "running"
        return (
            f"<Task {self.tid} {self.behavior_name!r} on "
            f"{self.host.name} {state}>"
        )


class TaskContext:
    """The API a task behavior programs against (the ``pvm_*`` calls)."""

    def __init__(self, system, task: Task):
        self._system = system
        self._task = task
        self.sim = system.sim

    # -- identity -----------------------------------------------------------

    @property
    def tid(self) -> int:
        """This task's id (pvm_mytid)."""
        return self._task.tid

    @property
    def parent(self) -> int:
        """The spawning task's id, or ``NO_PARENT`` (pvm_parent)."""
        return self._task.parent

    @property
    def host(self):
        """The simulated host this task runs on."""
        return self._task.host

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    # -- spawning / lifecycle ----------------------------------------------------

    def spawn(
        self,
        behavior: Callable,
        *args,
        count: int = 1,
        hosts: Optional[Sequence[str]] = None,
    ):
        """Generator: start ``count`` new tasks (pvm_spawn).

        Returns the list of new tids.  Placement is round-robin over the
        whole cluster unless ``hosts`` pins specific machines.  Each
        spawn charges ``mp_spawn_s`` (fork + exec + enrol) on the
        caller's timeline, as PVM's synchronous spawn does.
        """
        tids = []
        for index in range(count):
            host_name = hosts[index % len(hosts)] if hosts else None
            yield self.sim.timeout(self._system.costs.mp_spawn_s)
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("mp.spawns")
                metrics.charge("protocol", self._system.costs.mp_spawn_s)
            tids.append(
                self._system.spawn(
                    behavior, *args, host=host_name, parent=self.tid
                )
            )
        return tids

    def kill(self, tid: int) -> None:
        """Terminate another task immediately (pvm_kill)."""
        self._system.kill(tid)

    def exit(self) -> None:
        """Mark this task as finished (pvm_exit).

        The behavior should ``return`` shortly after; any further
        communication is a programming error.
        """
        self._task.exited = True

    def notify_task_exit(self, tids: Sequence[int], tag: int) -> None:
        """Ask for a message when any of ``tids`` exits (pvm_notify
        TaskExit).

        Each exit delivers one message from :data:`SYSTEM` with ``tag``
        whose buffer holds the dead task's tid (``unpack_int``).  Tasks
        that are already dead notify immediately, as PVM's does.
        """
        self._system.notify_task_exit(self._task.tid, tids, tag)

    def notify_host_delete(self, tag: int) -> None:
        """Ask for a message whenever a host crashes (pvm_notify
        HostDelete).

        Each crash delivers one message from :data:`SYSTEM` with ``tag``
        whose buffer holds the dead host's name (``unpack_string``).
        """
        self._system.notify_host_delete(self._task.tid, tag)

    # -- sending ------------------------------------------------------------

    def _coerce_buffer(self, data) -> PackBuffer:
        if isinstance(data, PackBuffer):
            return data
        buf = PackBuffer()
        buf.pack_object(data)
        return buf

    def send(self, dst: int, data: Union[PackBuffer, Any], tag: int = 0,
             deadline_s: Optional[float] = None):
        """Generator: send ``data`` to task ``dst`` (pvm_send).

        Charges one memory copy of the whole buffer (pack) plus the
        per-message software overhead on this task's CPU, then hands the
        packet to the NIC.  Like ``pvm_send``, this is *asynchronous*:
        it returns once the message is safely buffered, not when it is
        received.  ``deadline_s`` (absolute virtual time) stamps the
        packet so the reliable channel stops retransmitting it once the
        carried request could only arrive too late.
        """
        buf = self._coerce_buffer(data)
        costs = self._system.costs
        pack_seconds = buf.nbytes * costs.pack_cost_per_byte_s
        yield from self._busy(
            pack_seconds + costs.mp_per_message_s, label="mp.send"
        )
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("mp.messages_sent")
            metrics.count("mp.pack.bytes_copied", buf.nbytes)
            metrics.charge("copies", pack_seconds)
            metrics.charge("protocol", costs.mp_per_message_s)
        dst_task = self._system.task(dst)
        packet = Packet(
            src=self._task.host.name,
            dst=dst_task.host.name,
            port=self._system.port_name,
            payload=(dst, self._task.tid, tag, buf),
            size_bytes=self._wire_bytes(buf.nbytes),
            deadline_s=deadline_s,
        )
        self._system.network.enqueue(packet)

    def _wire_bytes(self, nbytes: int) -> int:
        """Payload inflated by the message-passing protocol overhead
        (``mp_wire_efficiency``): fragment headers, XDR padding, and
        daemon-routing retransmissions all consume shared-wire time."""
        return int(nbytes / self._system.costs.mp_wire_efficiency) + 32

    def mcast(
        self, tids: Sequence[int], data: Union[PackBuffer, Any], tag: int = 0
    ):
        """Generator: multicast to several tasks (pvm_mcast).

        PVM 3.3 implements multicast as a sender-side loop of unicasts;
        the buffer is packed once but each destination pays the
        per-message overhead and its own wire transfer.
        """
        buf = self._coerce_buffer(data)
        costs = self._system.costs
        pack_seconds = buf.nbytes * costs.pack_cost_per_byte_s
        yield from self._busy(pack_seconds, label="mp.pack")
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("mp.pack.bytes_copied", buf.nbytes)
            metrics.charge("copies", pack_seconds)
        for tid in tids:
            if tid == self._task.tid:
                continue  # pvm_mcast excludes the sender
            yield from self._busy(costs.mp_per_message_s, label="mp.send")
            if metrics is not None:
                metrics.count("mp.messages_sent")
                metrics.charge("protocol", costs.mp_per_message_s)
            dst_task = self._system.task(tid)
            packet = Packet(
                src=self._task.host.name,
                dst=dst_task.host.name,
                port=self._system.port_name,
                payload=(tid, self._task.tid, tag, buf),
                size_bytes=self._wire_bytes(buf.nbytes),
            )
            self._system.network.enqueue(packet)

    # -- receiving ------------------------------------------------------------

    def recv(self, src: int = ANY, tag: int = ANY):
        """Generator: blocking receive (pvm_recv).

        Waits for the next message matching (``src``, ``tag``) — ``ANY``
        matches everything — then charges the unpack copy and returns a
        :class:`Message`.
        """

        def matches(entry):
            msg_src, msg_tag, _buf = entry
            return (src == ANY or msg_src == src) and (
                tag == ANY or msg_tag == tag
            )

        entry = yield self._task.mailbox.get(matches)
        msg_src, msg_tag, buf = entry
        costs = self._system.costs
        unpack_seconds = buf.nbytes * costs.unpack_cost_per_byte_s
        yield from self._busy(unpack_seconds, label="mp.recv")
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("mp.messages_received")
            metrics.count("mp.unpack.bytes_copied", buf.nbytes)
            metrics.charge("copies", unpack_seconds)
        return Message(msg_src, msg_tag, UnpackBuffer(buf.items, buf.nbytes))

    def recv_timeout(self, timeout_s: float, src: int = ANY, tag: int = ANY):
        """Generator: blocking receive with a timeout (pvm_trecv).

        Like :meth:`recv`, but gives up after ``timeout_s`` virtual
        seconds and returns ``None``.  The pending mailbox claim is
        withdrawn on timeout so it cannot steal a later message.
        """

        def matches(entry):
            msg_src, msg_tag, _buf = entry
            return (src == ANY or msg_src == src) and (
                tag == ANY or msg_tag == tag
            )

        get = self._task.mailbox.get(matches)
        yield get | self.sim.timeout(timeout_s)
        if not get.triggered:
            self._task.mailbox.cancel_get(get)
            return None
        msg_src, msg_tag, buf = get.value
        costs = self._system.costs
        unpack_seconds = buf.nbytes * costs.unpack_cost_per_byte_s
        yield from self._busy(unpack_seconds, label="mp.recv")
        metrics = self.sim.obs
        if metrics is not None:
            metrics.count("mp.messages_received")
            metrics.count("mp.unpack.bytes_copied", buf.nbytes)
            metrics.charge("copies", unpack_seconds)
        return Message(msg_src, msg_tag, UnpackBuffer(buf.items, buf.nbytes))

    def try_recv(self, src: int = ANY, tag: int = ANY):
        """Generator: non-blocking receive (pvm_nrecv).

        Returns a :class:`Message` or ``None`` without waiting (beyond
        the unpack copy when a message is present).
        """
        for entry in self._task.mailbox.items:
            msg_src, msg_tag, buf = entry
            if (src == ANY or msg_src == src) and (
                tag == ANY or msg_tag == tag
            ):
                got = yield self._task.mailbox.get(lambda e: e is entry)
                _, _, got_buf = got
                costs = self._system.costs
                unpack_seconds = (
                    got_buf.nbytes * costs.unpack_cost_per_byte_s
                )
                yield from self._busy(unpack_seconds, label="mp.recv")
                metrics = self.sim.obs
                if metrics is not None:
                    metrics.count("mp.messages_received")
                    metrics.count("mp.unpack.bytes_copied", got_buf.nbytes)
                    metrics.charge("copies", unpack_seconds)
                return Message(
                    msg_src,
                    msg_tag,
                    UnpackBuffer(got_buf.items, got_buf.nbytes),
                )
        return None

    def probe(self, src: int = ANY, tag: int = ANY) -> bool:
        """Non-blocking check for a matching queued message (pvm_probe)."""
        for msg_src, msg_tag, _buf in self._task.mailbox.items:
            if (src == ANY or msg_src == src) and (
                tag == ANY or msg_tag == tag
            ):
                return True
        return False

    # -- computation -----------------------------------------------------------

    def compute(self, flops: float, working_set_bytes: float = 0.0):
        """Generator: run a computation on this task's host CPU."""
        yield self.sim.process(
            self._task.host.compute(flops, working_set_bytes)
        )

    def delay(self, seconds: float):
        """Generator: idle (not holding the CPU) for virtual time."""
        yield self.sim.timeout(seconds)

    def _busy(
        self,
        seconds: float,
        category: Optional[str] = None,
        label: Optional[str] = None,
    ):
        """Generator: hold this host's CPU for ``seconds``.

        ``category``/``label`` feed the cost ledger and trace when a
        metrics registry is attached; ``category=None`` records an
        uncharged span so callers can split the attribution themselves.
        """
        if seconds > 0:
            yield self.sim.process(
                self._task.host.busy(seconds, category=category, label=label)
            )

    # -- groups ------------------------------------------------------------------

    def join_group(self, name: str) -> int:
        """Join a named group; returns the instance number."""
        return self._system.groups.join(name, self._task.tid)

    def leave_group(self, name: str) -> None:
        """Leave a named group."""
        self._system.groups.leave(name, self._task.tid)

    def tid_in_group(self, name: str, instance: int) -> int:
        """Tid of group member ``instance`` (pvm_gettid)."""
        return self._system.groups.tid_of(name, instance)

    def group_size(self, name: str) -> int:
        """Current group size (pvm_gsize)."""
        return self._system.groups.size(name)

    def barrier(self, name: str, count: int):
        """Generator: block until ``count`` members reach the barrier."""
        yield self._system.groups.barrier(name, count)
