"""Dynamic task groups, after PVM's ``pvm_joingroup``/``pvm_gettid``.

A group maps instance numbers (0, 1, 2, …) to task ids.  Groups also
provide a counted barrier, which PVM exposes as ``pvm_barrier``.
"""

from __future__ import annotations

from typing import Optional

from ..des import Event, Simulator

__all__ = ["GroupRegistry"]


class _Group:
    def __init__(self, name: str):
        self.name = name
        self.members: list[int] = []  # instance number -> tid
        self.barrier_waiters: list[Event] = []
        self.barrier_target: Optional[int] = None


class GroupRegistry:
    """All groups known to one message-passing system."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._groups: dict[str, _Group] = {}

    def _group(self, name: str) -> _Group:
        if name not in self._groups:
            self._groups[name] = _Group(name)
        return self._groups[name]

    def join(self, name: str, tid: int) -> int:
        """Add ``tid`` to the group; returns its instance number."""
        group = self._group(name)
        if tid in group.members:
            return group.members.index(tid)
        group.members.append(tid)
        return len(group.members) - 1

    def leave(self, name: str, tid: int) -> None:
        """Remove ``tid`` from the group (instance numbers shift down)."""
        group = self._group(name)
        try:
            group.members.remove(tid)
        except ValueError:
            raise KeyError(f"tid {tid} not in group {name!r}") from None

    def tid_of(self, name: str, instance: int) -> int:
        """The task id at instance number ``instance`` (pvm_gettid)."""
        group = self._group(name)
        try:
            return group.members[instance]
        except IndexError:
            raise KeyError(
                f"group {name!r} has no instance {instance}"
            ) from None

    def instance_of(self, name: str, tid: int) -> int:
        """The instance number of ``tid`` in the group (pvm_getinst)."""
        group = self._group(name)
        try:
            return group.members.index(tid)
        except ValueError:
            raise KeyError(f"tid {tid} not in group {name!r}") from None

    def size(self, name: str) -> int:
        """Number of members (pvm_gsize)."""
        return len(self._group(name).members)

    def members(self, name: str) -> list[int]:
        """All member tids in instance order."""
        return list(self._group(name).members)

    def barrier(self, name: str, count: int) -> Event:
        """Event that fires when ``count`` tasks have hit the barrier.

        All callers must pass the same ``count`` (as in PVM); the barrier
        resets automatically once released, so it can be reused.
        """
        group = self._group(name)
        if group.barrier_target is None:
            group.barrier_target = count
        elif group.barrier_target != count:
            raise ValueError(
                f"barrier({name!r}) called with count={count}, "
                f"but earlier callers used {group.barrier_target}"
            )
        event = self.sim.event()
        group.barrier_waiters.append(event)
        if len(group.barrier_waiters) >= count:
            waiters, group.barrier_waiters = group.barrier_waiters, []
            group.barrier_target = None
            for waiter in waiters:
                waiter.succeed()
        return event
