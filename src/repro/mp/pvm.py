"""The message-passing system object (the PVM-workalike "virtual machine").

One :class:`MessagePassingSystem` spans the whole simulated cluster: it
places tasks on hosts (round-robin by default, like ``pvm_spawn`` with
default placement), runs a per-host delivery daemon that routes arriving
packets into task mailboxes, and tracks task lifecycles.

This substrate is the baseline the paper compares MESSENGERS against;
its cost structure (buffer copies, per-message overhead, spawn cost,
central manager traffic) is charged explicitly from the
:class:`~repro.netsim.costs.CostModel`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..des import Simulator
from ..netsim import CostModel, Network
from .buffers import PackBuffer
from .groups import GroupRegistry
from .task import NO_PARENT, SYSTEM, Task, TaskContext, TaskKilled

__all__ = ["MessagePassingSystem"]


class MessagePassingSystem:
    """PVM-flavoured message passing over a simulated network."""

    #: Network port all task-to-task traffic uses.
    port_name = "pvm"

    def __init__(self, network: Network):
        self.network = network
        self.sim: Simulator = network.sim
        self.costs: CostModel = network.costs
        self.groups = GroupRegistry(self.sim)
        #: Messages that arrived for dead/unknown tasks.
        self.dropped = 0
        self._tasks: dict[int, Task] = {}
        self._tids = itertools.count(1)
        self._placement = itertools.cycle(network.host_names)
        #: pvm_notify registrations: dead tid -> [(watcher, tag), ...]
        #: and host-delete watchers [(watcher, tag), ...].
        self._exit_watchers: dict[int, list[tuple[int, int]]] = {}
        self._host_watchers: list[tuple[int, int]] = []
        #: Crash victims whose notifications are held back until the
        #: failure is announced (oracle mode announces immediately).
        self._silenced: set[int] = set()
        self._crash_victims: dict[str, list[int]] = {}
        # Task traffic opts into at-least-once + dedup delivery; free
        # until a lossy fault plan is attached.
        network.set_reliable(self.port_name)
        network.add_crash_listener(self._on_host_crash)
        network.add_failure_listener(self._on_host_failure)
        self._attached_hosts: set[str] = set(network.host_names)
        for host_name in network.host_names:
            self.sim.process(self._delivery_daemon(host_name), daemon=True)

    def attach_host(self, host_name: str) -> None:
        """Enrol a host added after construction (host churn).

        Starts the pvmd delivery daemon for the new host and folds it
        into round-robin placement.  Idempotent per host name.
        """
        if host_name in self._attached_hosts:
            return
        self.network.host(host_name)  # raises KeyError if unknown
        self._attached_hosts.add(host_name)
        self._placement = itertools.cycle(
            sorted(self._attached_hosts)
        )
        self.sim.process(self._delivery_daemon(host_name), daemon=True)

    # -- task management -----------------------------------------------------

    def spawn(
        self,
        behavior: Callable,
        *args,
        host: Optional[str] = None,
        parent: int = NO_PARENT,
    ) -> int:
        """Start a task running ``behavior(ctx, *args)``; returns its tid.

        This is the system-level entry point (no spawn cost charged);
        tasks spawning other tasks should use
        :meth:`~repro.mp.task.TaskContext.spawn`, which charges
        ``mp_spawn_s`` per child.
        """
        host_name = host if host is not None else next(self._placement)
        tid = next(self._tids)
        host_obj = self.network.host(host_name)
        task = Task(tid, host_obj, behavior.__name__, parent)
        self._tasks[tid] = task
        if host_obj.crashed:
            # The pvmd on a dead host cannot enrol anything: the spawn
            # is stillborn.  The tid is returned exited, so a parent's
            # pvm_notify subscription fires immediately and its re-queue
            # logic recovers — the same path as a post-spawn crash.
            task.exited = True
            faults = self.network.faults
            if faults is not None:
                faults.count("spawns_to_dead_host")
            return tid
        context = TaskContext(self, task)
        task.process = self.sim.process(
            self._run_task(task, behavior, context, args)
        )
        return tid

    def _run_task(self, task: Task, behavior, context, args):
        from ..des import Interrupt

        try:
            result = yield from behavior(context, *args)
            task.exit_value = result
        except Interrupt as intr:
            if not isinstance(intr.cause, TaskKilled):
                raise
            task.exit_value = None
        finally:
            task.exited = True
            self._task_exited(task)
        return task.exit_value

    def task(self, tid: int) -> Task:
        """Look up a task record by tid."""
        try:
            return self._tasks[tid]
        except KeyError:
            raise KeyError(f"unknown tid {tid}") from None

    def kill(self, tid: int) -> None:
        """Forcibly terminate a task (pvm_kill)."""
        task = self.task(tid)
        if task.exited:
            return
        task.exited = True
        if task.process is not None and task.process.is_alive:
            task.process.interrupt(TaskKilled())

    @property
    def live_tasks(self) -> list[Task]:
        """Tasks that have not exited yet."""
        return [t for t in self._tasks.values() if not t.exited]

    # -- pvm_notify ----------------------------------------------------------

    def notify_task_exit(
        self, watcher_tid: int, tids, tag: int
    ) -> None:
        """Register ``watcher_tid`` for TaskExit messages about ``tids``.

        A tid that is already dead (or unknown — PVM treats a bad tid as
        an exited task) notifies immediately.
        """
        for tid in tids:
            task = self._tasks.get(tid)
            if task is None or task.exited:
                self._deliver_notification(
                    watcher_tid, tag, PackBuffer().pack_int(tid)
                )
            else:
                self._exit_watchers.setdefault(tid, []).append(
                    (watcher_tid, tag)
                )

    def notify_host_delete(self, watcher_tid: int, tag: int) -> None:
        """Register ``watcher_tid`` for HostDelete messages (host
        crashes)."""
        self._host_watchers.append((watcher_tid, tag))

    def _deliver_notification(
        self, watcher_tid: int, tag: int, buf: PackBuffer
    ) -> None:
        """The watcher's local pvmd synthesizes the message, so delivery
        is direct — no wire transfer from the (possibly dead) subject."""
        watcher = self._tasks.get(watcher_tid)
        if watcher is None or watcher.exited:
            self.dropped += 1
            return
        faults = self.network.faults
        if faults is not None:
            faults.count("notifications")
        watcher.mailbox.put((SYSTEM, tag, buf))

    def _task_exited(self, task: Task) -> None:
        if task.exit_notified or task.tid in self._silenced:
            return
        task.exit_notified = True
        for watcher_tid, tag in self._exit_watchers.pop(task.tid, []):
            self._deliver_notification(
                watcher_tid, tag, PackBuffer().pack_int(task.tid)
            )

    def _on_host_crash(self, host, lost_packets) -> None:
        """Physical phase of a crash: resident tasks die, silently.

        The tasks stop executing *now* (a dead CPU runs nothing), but
        the pvmds on the survivors have not noticed yet — TaskExit and
        HostDelete notifications wait for :meth:`_on_host_failure`
        (which follows immediately in oracle mode and at detection time
        when a failure detector drives the announcement).
        """
        victims = [
            task for task in self._tasks.values()
            if task.host is host and not task.exited
        ]
        faults = self.network.faults
        if faults is not None and victims:
            faults.count("tasks_crashed", len(victims))
        for task in victims:
            self._silenced.add(task.tid)
            self.kill(task.tid)
        self._crash_victims[host.name] = [t.tid for t in victims]

    def _on_host_failure(self, host) -> None:
        """Knowledge phase of a crash: the surviving pvmds tell watchers.

        Order mirrors PVM: the dead host's tasks notify first (their
        TaskExit notifications fire), then HostDelete notifications go
        out.  The watcher's local pvmd synthesizes both, so delivery
        does not depend on the dead host.
        """
        for tid in self._crash_victims.pop(host.name, []):
            self._silenced.discard(tid)
            task = self._tasks.get(tid)
            if task is not None:
                self._task_exited(task)
        for watcher_tid, tag in list(self._host_watchers):
            self._deliver_notification(
                watcher_tid, tag, PackBuffer().pack_string(host.name)
            )

    def wait_for(self, tid: int):
        """Event that fires when the task's behavior finishes."""
        return self.task(tid).process

    def run_until_task(self, tid: int) -> Any:
        """Drive the simulation until task ``tid`` finishes."""
        return self.sim.run(until=self.wait_for(tid))

    # -- delivery ------------------------------------------------------------------

    def _delivery_daemon(self, host_name: str):
        """Route packets arriving at one host into task mailboxes.

        A real pvmd demultiplexes incoming TCP/UDP traffic the same way.
        Messages for dead or unknown tasks are dropped (with a counter),
        as PVM drops mail for exited tasks.
        """
        port = self.network.host(host_name).port(self.port_name)
        while True:
            packet = yield port.get()
            dst_tid, src_tid, tag, buf = packet.payload
            task = self._tasks.get(dst_tid)
            if task is None or task.exited:
                self.dropped += 1
                continue
            yield task.mailbox.put((src_tid, tag, buf))

    def __repr__(self) -> str:
        return (
            f"<MessagePassingSystem tasks={len(self._tasks)} "
            f"live={len(self.live_tasks)}>"
        )
