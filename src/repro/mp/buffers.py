"""Typed pack/unpack buffers, after PVM's ``pvm_pk*``/``pvm_upk*``.

PVM programs marshal every outgoing message into a send buffer and
unmarshal it on receipt — two memory copies per message that the paper
identifies as a key cost message-passing pays and MESSENGERS does not
(§2.1).  The buffer records exactly how many bytes were copied so the
task layer can charge ``pack_cost_per_byte_s`` / ``unpack_cost_per_byte_s``
of CPU time.

Numpy arrays are "packed" by reference but still *charged* for their full
byte size, mirroring how PVM copies array contents into its buffer.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["PackBuffer", "UnpackBuffer", "estimate_size"]

_SCALAR_BYTES = 8  # ints and doubles on the simulated platform


def estimate_size(value: Any) -> int:
    """Wire size, in bytes, of an arbitrary payload object.

    Used by convenience APIs that send Python objects directly; explicit
    :class:`PackBuffer` use gives byte-exact accounting.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, dict):
        return sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) for item in value)
    # Fallback: a couple of words of header for opaque objects.
    return 16


class PackBuffer:
    """An outgoing message under construction.

    Mirrors ``pvm_initsend`` + a sequence of ``pvm_pk*`` calls::

        buf = PackBuffer()
        buf.pack_int(block_id)
        buf.pack_array(pixels)
        yield from ctx.send(dst, buf)
    """

    def __init__(self):
        self._items: list[Any] = []
        self._bytes: int = 0

    # -- packers ------------------------------------------------------------

    def pack_int(self, value: int) -> "PackBuffer":
        """Pack one integer."""
        self._items.append(int(value))
        self._bytes += _SCALAR_BYTES
        return self

    def pack_double(self, value: float) -> "PackBuffer":
        """Pack one double."""
        self._items.append(float(value))
        self._bytes += _SCALAR_BYTES
        return self

    def pack_string(self, value: str) -> "PackBuffer":
        """Pack a character string."""
        self._items.append(str(value))
        self._bytes += len(value.encode("utf-8")) + _SCALAR_BYTES
        return self

    def pack_bytes(self, value: bytes) -> "PackBuffer":
        """Pack raw bytes."""
        self._items.append(bytes(value))
        self._bytes += len(value)
        return self

    def pack_array(self, value: "np.ndarray") -> "PackBuffer":
        """Pack a numpy array (contents charged byte-for-byte)."""
        array = np.asarray(value)
        self._items.append(array)
        self._bytes += int(array.nbytes)
        return self

    def pack_ints(self, values: Iterable[int]) -> "PackBuffer":
        """Pack a sequence of integers."""
        items = [int(v) for v in values]
        self._items.append(items)
        self._bytes += _SCALAR_BYTES * len(items)
        return self

    def pack_object(self, value: Any) -> "PackBuffer":
        """Pack an arbitrary object, charging its estimated size."""
        self._items.append(value)
        self._bytes += estimate_size(value)
        return self

    # -- inspection ------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes that will be copied on send."""
        return self._bytes

    @property
    def items(self) -> Sequence[Any]:
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)


class UnpackBuffer:
    """A received message being consumed in pack order.

    Mirrors ``pvm_upk*``: items must be unpacked in the order they were
    packed; unpacking past the end raises :class:`IndexError`.
    """

    def __init__(self, items: Sequence[Any], nbytes: int):
        self._items = list(items)
        self._cursor = 0
        self.nbytes = nbytes

    def _next(self) -> Any:
        if self._cursor >= len(self._items):
            raise IndexError("unpack past end of message buffer")
        item = self._items[self._cursor]
        self._cursor += 1
        return item

    def unpack_int(self) -> int:
        """Unpack one integer."""
        return int(self._next())

    def unpack_double(self) -> float:
        """Unpack one double."""
        return float(self._next())

    def unpack_string(self) -> str:
        """Unpack a string."""
        return str(self._next())

    def unpack_bytes(self) -> bytes:
        """Unpack raw bytes."""
        return bytes(self._next())

    def unpack_array(self) -> "np.ndarray":
        """Unpack a numpy array."""
        return np.asarray(self._next())

    def unpack_ints(self) -> list[int]:
        """Unpack an integer sequence."""
        return list(self._next())

    def unpack_object(self) -> Any:
        """Unpack an arbitrary object."""
        return self._next()

    @property
    def remaining(self) -> int:
        """Number of items not yet unpacked."""
        return len(self._items) - self._cursor
