"""Message-passing substrate — a PVM 3.3 workalike on the simulated LAN.

The paper's baseline: stationary tasks exchanging passive messages, with
explicit pack/unpack buffer copies, per-message overhead and synchronous
spawn, all charged from the cost model.

Public surface: :class:`MessagePassingSystem`, :class:`TaskContext`
(the ``pvm_*``-flavoured API a task programs against), pack/unpack
buffers, and the ``ANY`` wildcard.
"""

from .buffers import PackBuffer, UnpackBuffer, estimate_size
from .groups import GroupRegistry
from .pvm import MessagePassingSystem
from .task import (
    ANY,
    Message,
    NO_PARENT,
    SYSTEM,
    Task,
    TaskContext,
    TaskKilled,
)

__all__ = [
    "ANY",
    "GroupRegistry",
    "Message",
    "MessagePassingSystem",
    "NO_PARENT",
    "PackBuffer",
    "SYSTEM",
    "Task",
    "TaskContext",
    "TaskKilled",
    "UnpackBuffer",
    "estimate_size",
]
