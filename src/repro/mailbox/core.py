"""Durable per-node mailboxes with an explicit delivery lifecycle.

The paper's Messengers carry computation to where state lives, but the
communication they perform dies with the run.  This layer adds what the
delegate/butlers systems are built around: a *persistent* mailbox per
logical node, written through the daemons, surviving host crashes,
restarts, and graceful churn (join/leave), with every piece of mail
walking an explicit lifecycle::

    sent -> delivered -> seen -> processed -> read

Durability model: each daemon syncs its mail spool to stable storage at
delivery time (the Maildir/SQLite idiom of the related repos), so the
spool — :class:`Mailbox` contents plus the in-flight ledger — survives
any crash.  The simulation keeps that durable state in the
:class:`MailboxService` registry; what rides the simulated wire (and can
be lost, duplicated, or die with a host) is the *delivery*, and the
service replays undelivered mail from the ledger when a failure is
announced — the same knowledge-phase discipline as the hop-boundary
checkpoints in :mod:`repro.messengers.system`.

Exactly-once delivery = at-least-once redispatch + per-mailbox dedup
(by mail id, and by broadcast id for fan-outs).  Exactly-once *read* is
tracked per recipient: a second read of the same mail is refused and
counted, which the ``no-double-read`` invariant turns into a failure.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from ..des import SimulationError, Store
from ..messengers.logical import LogicalNode
from ..netsim import Packet

__all__ = [
    "LIFECYCLE",
    "Mail",
    "Mailbox",
    "MailboxConfig",
    "MailboxService",
    "NoLiveDaemonError",
]

#: The delivery lifecycle, in order.  A mail's status only moves right.
LIFECYCLE = ("sent", "delivered", "seen", "processed", "read")

_STAGE = {status: index for index, status in enumerate(LIFECYCLE)}

#: Fixed per-mail wire overhead (headers, envelope) in bytes.
ENVELOPE_BYTES = 96


class NoLiveDaemonError(SimulationError):
    """Every daemon is dead or retired: there is nowhere to send mail
    from (or forward it to).  Raised instead of letting the send path
    fail with an unhelpful iteration error so callers — and the
    invariant monitor — can tell 'cluster is gone' from a code bug."""


@dataclass
class Mail:
    """One piece of mail.  ``body`` is deep-copied at send time, so the
    recipient can never observe later mutations by the sender (the
    payload isolation message passing pays for and Messengers avoid —
    mailboxes are message passing, so they pay)."""

    id: int
    sender: str
    to_uid: int
    subject: str
    body: Any
    sent_s: float
    #: Shared by all copies of one broadcast; None for point-to-point.
    bcast_id: Optional[int] = None
    #: Conversation correlation: a request carries its own id here and
    #: every reply echoes it, so multi-round exchanges (sagas, RPC over
    #: mail) can be stitched together.  None outside conversations.
    corr_id: Optional[int] = None
    #: Uid of the sender's node, for routing replies; None when the
    #: sender was the user (no node to reply to).
    reply_uid: Optional[int] = None
    status: str = "sent"
    delivered_s: Optional[float] = None
    read_count: int = 0
    #: Last dispatch endpoints (for failure replay).
    src_daemon: str = ""
    dst_daemon: str = ""
    #: Logical write origin, stamped once at first dispatch: the daemon
    #: that coordinated the write and its per-(mailbox, origin) write
    #: sequence number — the version-vector component replicas track.
    origin: str = ""
    oseq: int = 0

    @property
    def stage(self) -> int:
        return _STAGE[self.status]

    def advance(self, status: str) -> bool:
        """Move the lifecycle forward; backwards moves are refused."""
        if _STAGE[status] <= self.stage:
            return False
        self.status = status
        return True

    @property
    def size_bytes(self) -> int:
        return ENVELOPE_BYTES + len(self.subject) + len(repr(self.body))

    def __repr__(self) -> str:
        return (
            f"<Mail #{self.id} {self.sender!r}->uid{self.to_uid} "
            f"{self.status}>"
        )


class Mailbox:
    """The durable spool of one logical node.

    Mail is kept in delivery order; dedup happens here (by mail id and
    by broadcast id), which is what turns the transport's at-least-once
    into exactly-once.  The mailbox follows its node through re-homing
    and daemon churn — it is keyed by the node's uid, not by any host.
    """

    def __init__(self, service: "MailboxService", node: LogicalNode):
        self.service = service
        self.node = node
        self._mails: dict[int, Mail] = {}
        self._order: list[int] = []
        self._bcasts_seen: set[int] = set()
        self._read_ids: set[int] = set()
        #: Wake tokens for poll consumers (one put per delivery).
        self._arrivals: Store = Store(service.sim)

    # -- delivery (service-internal) ---------------------------------------

    def deliver(self, mail: Mail, now: float) -> bool:
        """Accept ``mail`` into the spool; returns False on a duplicate."""
        if mail.id in self._mails:
            return False
        if mail.bcast_id is not None:
            if mail.bcast_id in self._bcasts_seen:
                return False
            self._bcasts_seen.add(mail.bcast_id)
        self._mails[mail.id] = mail
        self._order.append(mail.id)
        mail.advance("delivered")
        mail.delivered_s = now
        self._arrivals.put(mail)
        return True

    # -- recipient API ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    @property
    def mails(self) -> list[Mail]:
        return [self._mails[mid] for mid in self._order]

    def unseen(self) -> list[Mail]:
        return [m for m in self.mails if m.stage < _STAGE["seen"]]

    def unread(self) -> list[Mail]:
        return [m for m in self.mails if m.stage < _STAGE["read"]]

    def get(self, mail_id: int) -> Mail:
        return self._mails[mail_id]

    def mark_seen(self, mail: Mail) -> None:
        if mail.advance("seen"):
            self.service.count("seen")
            self.service._note_stage(self, mail)

    def mark_processed(self, mail: Mail) -> None:
        if mail.advance("processed"):
            self.service.count("processed")
            self.service._note_stage(self, mail)

    def read(self, mail: Mail) -> Any:
        """Consume ``mail`` exactly once; a second read is refused.

        Returns the body.  The double read is recorded (counter +
        ``read_count``) so the ``no-double-read`` invariant can fail the
        run instead of the caller having to remember to check.
        """
        if mail.id in self._read_ids:
            mail.read_count += 1
            self.service.count("double_reads")
            raise ValueError(
                f"mail #{mail.id} was already read from mailbox "
                f"uid{self.node.uid}"
            )
        self._read_ids.add(mail.id)
        mail.read_count += 1
        mail.advance("read")
        self.service.count("read")
        self.service._read_log.append((self.node.uid, mail.id))
        self.service._note_stage(self, mail)
        return mail.body

    def __repr__(self) -> str:
        return (
            f"<Mailbox uid{self.node.uid} "
            f"({self.node.display_name}) mails={len(self._order)}>"
        )


@dataclass(frozen=True)
class MailboxConfig:
    """Typed configuration for the mailbox layer (facade plumbing).

    ``poll_interval_s`` is the default cadence of poll-mode consumers;
    ``auto_create`` lets :meth:`MailboxService.send` conjure the
    recipient's mailbox on first use (off = sending to a node that
    never registered raises).  ``replication`` hangs a
    :class:`~repro.replication.ReplicationConfig` off the layer: with a
    factor >= 2 every mailbox is spread over a replica set of daemons,
    writes are quorum-acked, and gossip anti-entropy keeps the replicas
    convergent across partitions (``None`` — the default — arms
    nothing: the single-copy dispatch path is byte-identical to a
    replication-free build).
    """

    poll_interval_s: float = 0.05
    auto_create: bool = True
    replication: Optional[Any] = None

    def __post_init__(self):
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll interval must be positive, got {self.poll_interval_s}"
            )
        if self.replication is not None:
            from ..replication import ReplicationConfig

            if not isinstance(self.replication, ReplicationConfig):
                raise TypeError(
                    "replication must be a ReplicationConfig or None, "
                    f"got {self.replication!r}"
                )


NodeRef = Union[LogicalNode, int, str]


class MailboxService:
    """Mailboxes + delivery pumps + the in-flight ledger for one system.

    One service spans the cluster.  Construction arms one mail pump per
    daemon (parked, costs nothing until mail flows), opts the mailbox
    port into reliable delivery, and registers for failure
    announcements so undelivered mail is replayed once a crash becomes
    known — after the messengers layer has re-homed the victims' nodes
    (listener order: the system registered first).
    """

    port_name = "mailbox"

    def __init__(self, system, config: Optional[MailboxConfig] = None):
        self.system = system
        self.sim = system.sim
        self.config = config or MailboxConfig()
        self._ids = itertools.count(1)
        self._bcast_ids = itertools.count(1)
        self._boxes: dict[int, Mailbox] = {}
        #: In-flight ledger: durable record of mail not yet delivered.
        self._pending: dict[int, Mail] = {}
        #: Event counters (mirrors FaultInjector.counts).
        self.counts: dict[str, int] = {}
        #: Delivery latencies in sent order (seconds), for the bench.
        self.latencies: list[float] = []
        #: (node uid, mail id) in read order — the run's read set.
        self._read_log: list[tuple[int, int]] = []
        self._consumers: list = []
        self._pumps_started: set[str] = set()
        #: Replica sets + gossip anti-entropy (None = single-copy mode,
        #: byte-identical to a replication-free build).
        self.replication = None
        repl_config = self.config.replication
        if repl_config is not None and repl_config.factor >= 2:
            from ..replication import ReplicationService

            self.replication = ReplicationService(self, repl_config)
        system.network.set_reliable(self.port_name)
        system.network.add_failure_listener(self._on_host_failure)
        system.mailboxes = self
        for daemon in system.daemons.values():
            self._start_pump(daemon)

    # -- counters ------------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def lifecycle_counts(self) -> dict[str, int]:
        """How many mails have reached each lifecycle stage (cumulative:
        a read mail was also sent, delivered, seen, and processed)."""
        totals = dict.fromkeys(LIFECYCLE, 0)
        mails = list(self._pending.values())
        for box in self._boxes.values():
            mails.extend(box.mails)
        for mail in mails:
            for status in LIFECYCLE[: mail.stage + 1]:
                totals[status] += 1
        return totals

    def read_digest(self) -> str:
        """Content digest of the read set, for bit-identity assertions."""
        blob = repr(self._read_log).encode("utf-8")
        return hashlib.sha1(blob).hexdigest()

    def lifecycle_digest(self) -> str:
        """Digest of every mailbox's full lifecycle state.

        Covers ``(uid, mail id, stage)`` for all delivered mail — the
        per-mailbox shape the anti-entropy layer gossips between
        replicas (:meth:`~repro.replication.ReplicaState.digest` is the
        per-replica analogue), and the thing that must agree across the
        cluster once a partition heals and gossip quiesces.
        """
        entries = []
        for uid in sorted(self._boxes):
            box = self._boxes[uid]
            entries.extend(
                (uid, mid, box._mails[mid].stage)
                for mid in sorted(box._mails)
            )
        return hashlib.sha1(repr(entries).encode("utf-8")).hexdigest()

    def _note_stage(self, box: "Mailbox", mail: Mail) -> None:
        """Tell the home replica about a lifecycle advancement."""
        if self.replication is not None:
            self.replication.note_stage(box.node.uid, mail)

    # -- mailbox access -------------------------------------------------------

    def _resolve(self, node: NodeRef) -> LogicalNode:
        if isinstance(node, LogicalNode):
            return node
        if isinstance(node, int):
            box = self._boxes.get(node)
            if box is not None:
                return box.node
            for candidate in self.system.logical.nodes:
                if candidate.uid == node:
                    return candidate
            raise KeyError(f"no logical node with uid {node}")
        matches = sorted(
            self.system.logical.find_named(node), key=lambda n: n.uid
        )
        if not matches:
            raise KeyError(f"no logical node named {node!r}")
        return matches[0]

    def mailbox(self, node: NodeRef) -> Mailbox:
        """The durable mailbox of ``node`` (created on first access)."""
        resolved = self._resolve(node)
        box = self._boxes.get(resolved.uid)
        if box is None:
            box = Mailbox(self, resolved)
            self._boxes[resolved.uid] = box
        return box

    @property
    def mailboxes(self) -> list[Mailbox]:
        return [self._boxes[uid] for uid in sorted(self._boxes)]

    # -- sending ---------------------------------------------------------------

    def _sender_label(self, frm: Optional[NodeRef]) -> tuple[str, str]:
        """(label, origin daemon) for a send; ``frm=None`` = the user."""
        if frm is None:
            return "user", self._first_live_daemon()
        node = self._resolve(frm)
        origin = node.daemon
        daemon = self.system.daemons.get(origin)
        if daemon is None or daemon.dead or daemon.retired:
            origin = self._first_live_daemon()
        return node.display_name, origin

    def _first_live_daemon(self) -> str:
        for name in self.system.daemon_names:
            daemon = self.system.daemons[name]
            if not daemon.dead and not daemon.retired:
                return name
        raise NoLiveDaemonError(
            "no live daemon to send mail from: all "
            f"{len(self.system.daemon_names)} daemon(s) are dead or "
            "retired"
        )

    def send(
        self,
        to: NodeRef,
        body: Any,
        subject: str = "",
        frm: Optional[NodeRef] = None,
        corr_id: Optional[int] = None,
    ) -> Mail:
        """Post one mail to ``to``'s mailbox; returns the Mail record.

        The send is asynchronous: the record enters the in-flight
        ledger immediately (status ``sent``) and rides the wire to the
        daemon currently homing the recipient's node.  ``corr_id``
        threads the mail into an existing conversation (see
        :meth:`request` / :meth:`reply`).
        """
        node = self._resolve(to)
        if not self.config.auto_create and node.uid not in self._boxes:
            raise KeyError(
                f"node {node.display_name!r} has no mailbox and "
                "auto_create is off"
            )
        self.mailbox(node)
        sender, origin = self._sender_label(frm)
        mail = Mail(
            id=next(self._ids),
            sender=sender,
            to_uid=node.uid,
            subject=subject,
            body=copy.deepcopy(body),
            sent_s=self.sim.now,
            corr_id=corr_id,
            reply_uid=self._resolve(frm).uid if frm is not None else None,
        )
        self._pending[mail.id] = mail
        self.count("sent")
        self._dispatch(mail, origin)
        return mail

    def request(
        self,
        to: NodeRef,
        body: Any,
        subject: str = "",
        frm: Optional[NodeRef] = None,
    ) -> Mail:
        """Open a conversation: send a mail whose own id is the
        correlation id every :meth:`reply` in the exchange will carry."""
        mail = self.send(to, body, subject=subject, frm=frm)
        # The id is only known after `send` mints it; delivery happens
        # strictly later in virtual time, so stamping here is safe.
        mail.corr_id = mail.id
        self.count("requests")
        return mail

    def reply(
        self,
        to_mail: Mail,
        body: Any,
        subject: str = "",
    ) -> Mail:
        """Answer ``to_mail`` within its conversation.

        Routes to the original sender's node (wherever it now lives)
        and echoes the conversation's correlation id.  Raises if the
        mail came from the user (no node to reply to).
        """
        if to_mail.reply_uid is None:
            raise ValueError(
                f"mail #{to_mail.id} has no reply address "
                "(sent by the user, not a node)"
            )
        corr = to_mail.corr_id if to_mail.corr_id is not None else to_mail.id
        self.count("replies")
        return self.send(
            to_mail.reply_uid,
            body,
            subject=subject or f"re: {to_mail.subject}",
            frm=to_mail.to_uid,
            corr_id=corr,
        )

    def broadcast(
        self,
        body: Any,
        subject: str = "",
        frm: Optional[NodeRef] = None,
        include_sender: bool = False,
    ) -> list[Mail]:
        """Post one mail to every registered mailbox (fan-out).

        Each recipient gets its own Mail record; all copies share one
        broadcast id, which the mailboxes dedup on — a replayed copy
        can never be delivered twice to the same recipient.
        """
        sender, origin = self._sender_label(frm)
        sender_uid = (
            self._resolve(frm).uid if frm is not None else None
        )
        bcast = next(self._bcast_ids)
        self.count("broadcasts")
        mails = []
        for uid in sorted(self._boxes):
            if not include_sender and uid == sender_uid:
                continue
            mail = Mail(
                id=next(self._ids),
                sender=sender,
                to_uid=uid,
                subject=subject,
                body=copy.deepcopy(body),
                sent_s=self.sim.now,
                bcast_id=bcast,
            )
            self._pending[mail.id] = mail
            self.count("sent")
            self._dispatch(mail, origin)
            mails.append(mail)
        return mails

    # -- delivery -----------------------------------------------------------

    def _dispatch(self, mail: Mail, origin: str) -> None:
        """Put ``mail`` on the wire toward its recipient's home daemon.

        With replication armed the write fans out to the whole replica
        set instead (quorum-acked at the receiving pumps); without it
        this is the single-copy path, byte-identical to a
        replication-free build.
        """
        if self.replication is not None:
            self.replication.dispatch(mail, origin)
            return
        box = self._boxes[mail.to_uid]
        dest = box.node.daemon
        mail.src_daemon = origin
        mail.dst_daemon = dest
        self.system.network.enqueue(Packet(
            src=origin,
            dst=dest,
            port=self.port_name,
            payload=("mail", mail),
            size_bytes=mail.size_bytes,
        ))

    def _start_pump(self, daemon) -> None:
        if daemon.name in self._pumps_started:
            return
        self._pumps_started.add(daemon.name)
        self.sim.process(self._mail_pump(daemon), daemon=True)

    def _mail_pump(self, daemon):
        """Per-daemon delivery pump: spool arriving mail durably.

        Mail addressed to a node this daemon no longer homes (re-homed
        by a crash, or the daemon retired under it) is forwarded to the
        node's current home — the mailbox follows the node, always.
        """
        port = daemon.host.port(self.port_name)
        costs = self.system.costs
        while True:
            packet = yield port.get()
            kind, mail = packet.payload
            if kind == "repl":
                yield self.sim.process(
                    daemon.host.busy(
                        costs.hop_dispatch_s,
                        category="dispatch",
                        label="mail.gossip",
                    )
                )
                self.replication.on_gossip(daemon.name, mail)
                continue
            if kind == "rmail":
                yield self.sim.process(
                    daemon.host.busy(
                        costs.hop_dispatch_s,
                        category="dispatch",
                        label="mail.replica",
                    )
                )
                self.replication.on_rmail(daemon.name, mail)
                continue
            box = self._boxes.get(mail.to_uid)
            if box is None:  # pragma: no cover - boxes are never dropped
                continue
            home = box.node.daemon
            if home != daemon.name or daemon.retired:
                target = (
                    home
                    if home != daemon.name
                    else self._first_live_daemon()
                )
                if target == daemon.name:
                    # Home is here but we are retired and also the only
                    # live candidate — impossible by retire_daemon's
                    # survivor requirement; deliver rather than spin.
                    pass
                else:
                    self.count("forwarded")
                    mail.src_daemon = daemon.name
                    mail.dst_daemon = target
                    self.system.network.enqueue(Packet(
                        src=daemon.name,
                        dst=target,
                        port=self.port_name,
                        payload=packet.payload,
                        size_bytes=packet.size_bytes,
                    ))
                    continue
            yield self.sim.process(
                daemon.host.busy(
                    costs.hop_dispatch_s,
                    category="dispatch",
                    label="mail.deliver",
                )
            )
            self._deliver_now(box, mail)

    def _deliver_now(self, box: Mailbox, mail: Mail) -> bool:
        """Spool ``mail`` into ``box`` at the current instant.

        The shared tail of every delivery path — the per-daemon pump,
        replica promotion after a crash, and gossip read-repair at the
        home replica — so ledger pop, counters, and latency accounting
        stay identical no matter which path completed the delivery.
        """
        self._pending.pop(mail.id, None)
        if box.deliver(mail, self.sim.now):
            self.count("delivered")
            self.latencies.append(self.sim.now - mail.sent_s)
            metrics = self.sim.obs
            if metrics is not None:
                metrics.count("mailbox.delivered")
            self._note_stage(box, mail)
            return True
        self.count("duplicates_suppressed")
        return False

    # -- failure / churn hooks ------------------------------------------------

    def _on_host_failure(self, host) -> None:
        """Replay undelivered mail once a crash is *known*.

        Runs after the messengers layer's failure listener (registration
        order), so victims' nodes are already re-homed: every ledger
        entry whose last dispatch touched the dead host is re-sent from
        a live daemon to the recipient's current home.  Per-mailbox
        dedup absorbs the copy that may still be in flight.

        With replication armed the replication layer handles the
        announcement instead: it promotes a surviving replica to home
        (the promoted daemon already holds the mail durably) and only
        falls back to ledger replay for mail no surviving replica ever
        acked.
        """
        name = host.name
        if self.replication is not None:
            self.replication.on_host_failure(name)
            return
        for mail in list(self._pending.values()):
            if name not in (mail.src_daemon, mail.dst_daemon):
                continue
            self.count("redispatched")
            self._dispatch(mail, self._first_live_daemon())

    def on_daemon_joined(self, name: str) -> None:
        """Churn hook (from MessengersSystem.add_daemon): arm a pump."""
        self._start_pump(self.system.daemons[name])

    def on_daemon_retired(self, name: str) -> None:
        """Churn hook (from MessengersSystem.retire_daemon).

        The leaver's nodes were just re-homed; ledger entries aimed at
        it are re-sent to the new homes.  The in-flight copies land on
        the retired pump and are forwarded — dedup absorbs whichever
        arrives second.
        """
        if self.replication is not None:
            self.replication.on_daemon_retired(name)
        for mail in list(self._pending.values()):
            if mail.dst_daemon != name:
                continue
            self.count("redispatched")
            self._dispatch(mail, self._first_live_daemon())

    # -- poll-mode consumers ----------------------------------------------------

    def consumer(
        self,
        node: NodeRef,
        handler: Callable[[Mail], Any],
        poll_interval_s: Optional[float] = None,
    ) -> Mailbox:
        """Attach a poll-mode consumer to ``node``'s mailbox.

        The consumer wakes at the first poll tick at-or-after each
        delivery (``k * interval``), then drains everything unseen:
        each mail is marked seen, handed to ``handler``, marked
        processed, and read — the full lifecycle, exactly once.  The
        wait for the tick is a foreground timeout, so a run cannot
        quiesce with delivered-but-unprocessed mail.
        """
        box = self.mailbox(node)
        interval = (
            poll_interval_s
            if poll_interval_s is not None
            else self.config.poll_interval_s
        )
        if interval <= 0:
            raise ValueError(
                f"poll interval must be positive, got {interval}"
            )
        self.sim.process(self._consume(box, handler, interval), daemon=True)
        self._consumers.append((box, handler))
        return box

    def _consume(self, box: Mailbox, handler, interval: float):
        while True:
            token = yield box._arrivals.get()
            if token.stage >= _STAGE["seen"]:
                continue  # already drained by an earlier batch
            ticks = math.floor(self.sim.now / interval + 1e-9) + 1
            wait = ticks * interval - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            batch = box.unseen()
            if not batch:
                continue
            self.count("poll_batches")
            for mail in batch:
                box.mark_seen(mail)
                handler(mail)
                box.mark_processed(mail)
                box.read(mail)

    def __repr__(self) -> str:
        return (
            f"<MailboxService boxes={len(self._boxes)} "
            f"pending={len(self._pending)} "
            f"delivered={self.counts.get('delivered', 0)}>"
        )
