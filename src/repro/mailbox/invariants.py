"""Mailbox invariants: what a faulty run must never do to the mail.

Wired into :class:`repro.resilience.InvariantMonitor` like any other
invariant, so the schedule searcher can attack the delivery lifecycle:

* :class:`NoLostMail` — every mail ever sent is either still in the
  in-flight ledger (run time) or delivered (end of run); delivery
  counters balance against sends.  A crash, a retired daemon, or a
  dropped packet may *delay* mail, never destroy it.
* :class:`NoDoubleRead` — no mail is read twice, and no broadcast is
  delivered twice to the same recipient: the at-least-once replay
  machinery must be invisible through the exactly-once API.
"""

from __future__ import annotations

from typing import Optional

from ..resilience import Invariant
from .core import LIFECYCLE, MailboxService

__all__ = ["NoDoubleRead", "NoLostMail"]

_DELIVERED = LIFECYCLE.index("delivered")


class NoLostMail(Invariant):
    """Sent mail is never silently destroyed.

    During the run: every mail below ``delivered`` is accounted for in
    the in-flight ledger (it can still be replayed), and the service's
    counters balance (``delivered + duplicates == arrivals <= sends +
    replays``).  At the end: the ledger is empty and every mail ever
    sent reached at least ``delivered``.
    """

    name = "no-lost-mail"

    def __init__(self, service: MailboxService):
        self.service = service

    def check(self, now: float) -> Optional[str]:
        pending = self.service._pending
        for box in self.service._boxes.values():
            for mail in box.mails:
                if mail.stage < _DELIVERED and mail.id not in pending:
                    return (
                        f"mail #{mail.id} is below 'delivered' but "
                        "missing from the in-flight ledger — it can "
                        "never be replayed"
                    )
        counts = self.service.counts
        delivered = counts.get("delivered", 0)
        sent = counts.get("sent", 0)
        if delivered > sent:
            return (
                f"{delivered} deliveries but only {sent} sends — "
                "mail was conjured from nowhere"
            )
        return None

    def check_final(self, now: float) -> Optional[str]:
        problem = self.check(now)
        if problem is not None:
            return problem
        stuck = sorted(self.service._pending)
        if stuck:
            return (
                f"{len(stuck)} mail(s) still undelivered at the end of "
                f"the run (ids {stuck[:5]}...)"
                if len(stuck) > 5
                else f"{len(stuck)} mail(s) still undelivered at the "
                f"end of the run (ids {stuck})"
            )
        for box in self.service._boxes.values():
            for mail in box.mails:
                if mail.stage < _DELIVERED:  # pragma: no cover - defense
                    return f"mail #{mail.id} never reached 'delivered'"
        return None


class NoDoubleRead(Invariant):
    """The exactly-once surface: one read per mail, one delivery per
    broadcast per recipient, no matter how many copies the replay and
    retransmit machinery produced underneath."""

    name = "no-double-read"

    def __init__(self, service: MailboxService):
        self.service = service

    def check(self, now: float) -> Optional[str]:
        for box in self.service._boxes.values():
            bcasts: set[int] = set()
            for mail in box.mails:
                if mail.read_count > 1:
                    return (
                        f"mail #{mail.id} read {mail.read_count} times "
                        f"from mailbox uid{box.node.uid}"
                    )
                if mail.bcast_id is not None:
                    if mail.bcast_id in bcasts:
                        return (
                            f"broadcast {mail.bcast_id} delivered twice "
                            f"to mailbox uid{box.node.uid}"
                        )
                    bcasts.add(mail.bcast_id)
        log = self.service._read_log
        if len(set(log)) != len(log):
            return "the read log contains a duplicate (node, mail) pair"
        return None
