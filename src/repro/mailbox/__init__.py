"""repro.mailbox — durable daemon-routed mailboxes with a delivery
lifecycle (``sent -> delivered -> seen -> processed -> read``),
broadcast with per-recipient dedup, poll-mode consumers, and the
invariants that keep the exactly-once story honest under faults and
churn.  See DESIGN.md row 14 and the "Mailboxes & churn" section of the
README."""

from .core import (
    LIFECYCLE,
    Mail,
    Mailbox,
    MailboxConfig,
    MailboxService,
    NoLiveDaemonError,
)
from .invariants import NoDoubleRead, NoLostMail
from .natives import register_mailbox_natives

__all__ = [
    "LIFECYCLE",
    "Mail",
    "Mailbox",
    "MailboxConfig",
    "MailboxService",
    "NoDoubleRead",
    "NoLiveDaemonError",
    "NoLostMail",
    "register_mailbox_natives",
]
