"""MCL natives for the mailbox layer: M_send / M_recv / M_ack / M_inbox.

Messenger scripts talk to mailboxes through native-mode functions, the
same escape hatch the paper uses for "precompiled C functions" (§2.1).
A Messenger always acts *as its current node*: ``M_send`` posts from
the node it sits on, ``M_recv`` pops that node's own mailbox.

::

    worker() {
        while (M_inbox() > 0) {
            task = M_recv();      /* marks the mail seen   */
            /* ... work ...      */
            M_ack();              /* processed + read      */
        }
    }

``M_recv`` returns the mail body (0 when the mailbox has nothing
unseen) and remembers the mail per Messenger so a following ``M_ack``
completes its lifecycle.  Un-acked receives are deliberately visible:
the mail stays below ``read`` and the ``no-lost-mail`` style audits in
the tests can flag abandoned conversations.
"""

from __future__ import annotations

from .core import MailboxService

__all__ = ["register_mailbox_natives"]


def register_mailbox_natives(service: MailboxService) -> None:
    """Install the mailbox natives into the owning system's registry."""
    registry = service.system.natives
    #: Messenger id -> the mail its last M_recv returned (awaiting ack).
    current: dict[int, object] = {}

    def m_send(env, to, body, subject=""):
        mail = service.send(to, body, subject=str(subject), frm=env.node)
        env.charge_memcpy(mail.size_bytes)
        return mail.id

    def m_bcast(env, body, subject=""):
        mails = service.broadcast(body, subject=str(subject), frm=env.node)
        for mail in mails:
            env.charge_memcpy(mail.size_bytes)
        return len(mails)

    def m_recv(env):
        box = service.mailbox(env.node)
        unseen = box.unseen()
        if not unseen:
            return 0
        mail = unseen[0]
        box.mark_seen(mail)
        # Remember the box too: the Messenger may hop before acking,
        # and the ack must complete the lifecycle where the mail lives.
        current[env.messenger.id] = (box, mail)
        env.charge_memcpy(mail.size_bytes)
        return mail.body

    def m_ack(env):
        entry = current.pop(env.messenger.id, None)
        if entry is None:
            return 0
        box, mail = entry
        box.mark_processed(mail)
        box.read(mail)
        return 1

    def m_inbox(env):
        return len(service.mailbox(env.node).unseen())

    registry.register(m_send, name="M_send")
    registry.register(m_bcast, name="M_bcast")
    registry.register(m_recv, name="M_recv")
    registry.register(m_ack, name="M_ack")
    registry.register(m_inbox, name="M_inbox")
