"""Scale sweep: throughput as entity counts grow by orders of magnitude.

The ROADMAP scale target is blunt: simulated events/sec at **1000x the
entity count** must stay within 2x of the smallest configuration.  That
is only possible if nothing in the hot path is super-linear in the
number of daemons, logical nodes, or live Messengers — which is exactly
what the calendar-queue scheduler (O(1) amortised vs. O(log n) heap),
the per-daemon logical-node shards (O(shard) vs. O(all nodes) scans)
and the object free-lists (Timeout / Messenger / Packet reuse instead
of allocator churn) buy.

One *scale point* is a ring benchmark:

* ``d`` daemons on one LAN, daemon graph a ring;
* ``n`` logical nodes in a directed ``ring`` linked cycle, striped
  round-robin over the daemons (consecutive nodes therefore live on
  *different* daemons, so every hop is a remote hop — worst case);
* ``m`` walker Messengers spread evenly around the ring, each hopping
  ``hops`` times and dying.

The workload is RNG-free, so every simulated quantity (final sim time,
event count, remote-hop count) is bit-identical across hosts, runs and
schedulers; ``BENCH_scale.json`` commits them as golden values and the
CI ``scale-smoke`` job replays truncated grid points against them.
Wall-clock events/sec is measured around the run loop only (build
excluded) and is the quantity the 2x acceptance bound applies to.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

from ..des import Simulator, scheduler_default
from ..messengers.daemon_graph import DaemonNetwork
from ..messengers.netbuilder import build_ring
from ..messengers.system import MessengersSystem
from ..netsim.transport import build_lan

__all__ = ["SCALE_GRID", "WALKER_SCRIPT", "run_scale_point", "run_scale_sweep"]

#: The walker: hop the ring ``steps`` times, then finish.
WALKER_SCRIPT = """
walker(steps) {
    for (k = 0; k < steps; k++) {
        hop(ll = "ring"; ldir = +);
    }
}
"""

#: Ring hops per walker at every grid point (fixed so points differ
#: only in population, not in per-Messenger work).
HOPS_PER_WALKER = 16

#: The sweep: daemons x logical nodes x Messengers.  ``nodes +
#: messengers`` grows exactly 72 -> 72,000 (the 1000x of the ROADMAP
#: target); daemons ride along 4 -> 32 to keep per-daemon load growing
#: too.  ``factor`` names the point.
SCALE_GRID: tuple[dict, ...] = (
    {"factor": 1, "daemons": 4, "nodes": 64, "messengers": 8},
    {"factor": 10, "daemons": 8, "nodes": 640, "messengers": 80},
    {"factor": 100, "daemons": 16, "nodes": 6400, "messengers": 800},
    {"factor": 1000, "daemons": 32, "nodes": 64000, "messengers": 8000},
)


def run_scale_point(
    daemons: int,
    nodes: int,
    messengers: int,
    hops: int = HOPS_PER_WALKER,
    scheduler: str = "calendar",
) -> dict:
    """Run one ring benchmark; returns simulated + wall-clock results.

    Simulated values (``sim_seconds``, ``events``, ``remote_hops``) are
    deterministic; ``wall_s``/``events_per_sec`` are host-dependent.
    """
    with scheduler_default(scheduler):
        sim = Simulator()
        network = build_lan(sim, daemons)
        system = MessengersSystem(
            network, DaemonNetwork.ring(network.host_names)
        )
        # Scale mode: finished walkers are pooled, not archived.
        system.retain_finished = False
        ring = build_ring(system, nodes)
        program = system.compile(WALKER_SCRIPT)
        stride = max(1, nodes // messengers)
        for index in range(messengers):
            name = f"n{(index * stride) % nodes}"
            node = ring[name]
            system.inject(program, (hops,), daemon=node.daemon, node=name)
        eid_before = sim._eid
        wall_start = perf_counter()
        sim_seconds = system.run_to_quiescence()
        wall_s = perf_counter() - wall_start
        events = sim._eid - eid_before
    remote_hops = sum(
        d.stats.hops_out_remote for d in system.daemons.values()
    )
    return {
        "daemons": daemons,
        "nodes": nodes,
        "messengers": messengers,
        "hops_per_walker": hops,
        "entities": daemons + nodes + messengers,
        "scheduler": scheduler,
        "sim_seconds": sim_seconds,
        "events": events,
        "remote_hops": remote_hops,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
    }


def run_scale_sweep(
    grid: Optional[Sequence[dict]] = None,
    schedulers: Sequence[str] = ("calendar", "heap"),
    hops: int = HOPS_PER_WALKER,
) -> dict:
    """Run every grid point under every scheduler.

    Asserts that all schedulers produce bit-identical simulated values
    at each point (the equivalence proof, measured rather than argued),
    then reports per-scheduler wall throughput and the headline
    largest-vs-smallest events/sec ratio.
    """
    points = []
    for spec in grid if grid is not None else SCALE_GRID:
        runs = {
            kind: run_scale_point(
                spec["daemons"],
                spec["nodes"],
                spec["messengers"],
                hops=hops,
                scheduler=kind,
            )
            for kind in schedulers
        }
        first = runs[schedulers[0]]
        for kind, run in runs.items():
            for key in ("sim_seconds", "events", "remote_hops"):
                if run[key] != first[key]:
                    raise AssertionError(
                        f"scheduler {kind!r} diverged from "
                        f"{schedulers[0]!r} on {key} at factor "
                        f"{spec.get('factor')}: {run[key]} != {first[key]}"
                    )
        points.append(
            {
                "factor": spec.get("factor"),
                "daemons": first["daemons"],
                "nodes": first["nodes"],
                "messengers": first["messengers"],
                "hops_per_walker": first["hops_per_walker"],
                "entities": first["entities"],
                "sim_seconds": first["sim_seconds"],
                "events": first["events"],
                "remote_hops": first["remote_hops"],
                "events_per_sec": {
                    kind: runs[kind]["events_per_sec"] for kind in runs
                },
                "wall_s": {kind: runs[kind]["wall_s"] for kind in runs},
            }
        )
    report: dict = {"suite": "scale", "points": points}
    if len(points) >= 2:
        smallest, largest = points[0], points[-1]
        ratios = {
            kind: (
                largest["events_per_sec"][kind]
                / smallest["events_per_sec"][kind]
                if smallest["events_per_sec"][kind]
                else 0.0
            )
            for kind in schedulers
        }
        report["largest_vs_smallest_evps"] = ratios
        report["within_2x"] = all(r >= 0.5 for r in ratios.values())
    return report
