"""Performance toolkit: golden event-trace hashing + throughput probes.

Two jobs, both in service of the fast path through the simulation stack:

* **Proof of bit-identity.**  :class:`TraceHasher` folds every executed
  simulation event — ``(time, priority, eid, daemon, type)`` exactly as
  popped from the scheduler heap — into one digest.  Optimisations to
  the DES kernel or the MCL VM must not change a single bit of any
  simulated result, and the golden-hash tests in
  ``tests/test_perf_determinism.py`` pin digests captured *before* the
  fast path landed.  :func:`hashing_all_simulators` attaches one shared
  hasher to every simulator built inside the ``with`` block, so whole
  app runs (``run_messengers``, ``run_pvm``, …) can be hashed without
  threading a parameter through every layer.

* **Throughput probes.**  :func:`des_event_throughput`,
  :func:`store_throughput`, :func:`vm_opcode_throughput` and
  :func:`net_packet_throughput` are the microbenchmarks behind
  ``benchmarks/test_perf_throughput.py``, ``BENCH_perf.json`` and the
  CI perf-smoke job.  Each returns ``{"n": ..., "wall_s": ...,
  "per_sec": ...}`` measured over the *hot* portion only (setup
  excluded), taking the best of ``repeats`` runs so scheduler noise can
  only help.
"""

from __future__ import annotations

import struct
import time
from contextlib import contextmanager
from hashlib import blake2b

from ..des import Simulator

__all__ = [
    "TraceHasher",
    "hashing_all_simulators",
    "des_event_throughput",
    "des_speedup_vs_reference",
    "store_throughput",
    "vm_opcode_throughput",
    "vm_backend_speedup",
    "net_packet_throughput",
    "throughput_suite",
]


class TraceHasher:
    """Order-sensitive digest of every event a simulator executes.

    Attach with ``sim.trace_hash = TraceHasher()`` (or use
    :func:`hashing_all_simulators`).  The simulator then routes its run
    loop through the instrumented path and calls :meth:`record` once per
    executed event, in execution order.  Two runs are scheduling-
    identical iff their digests match.
    """

    __slots__ = ("_h", "events")

    def __init__(self):
        self._h = blake2b(digest_size=16)
        #: Number of events folded in so far.
        self.events = 0

    def record(
        self, time: float, priority: int, eid: int, daemon: bool, kind: str
    ) -> None:
        """Fold one executed event into the digest."""
        self._h.update(struct.pack("<dqq?", time, priority, eid, daemon))
        self._h.update(kind.encode())
        self.events += 1

    def hexdigest(self) -> str:
        """Digest of everything recorded so far (non-destructive)."""
        return self._h.copy().hexdigest()

    def __repr__(self) -> str:
        return f"<TraceHasher events={self.events} {self.hexdigest()}>"


@contextmanager
def hashing_all_simulators():
    """Attach one shared :class:`TraceHasher` to every simulator built
    inside the block.

    The app runners (``run_messengers``, ``run_pvm``, the figure
    sweeps) construct their simulators internally; this context manager
    lets the golden-trace tests hash those runs without changing any
    runner signature::

        with hashing_all_simulators() as hasher:
            run_messengers(grid, procs)
        assert hasher.hexdigest() == GOLDEN
    """
    hasher = TraceHasher()
    original_init = Simulator.__init__

    def patched_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        self.trace_hash = hasher

    Simulator.__init__ = patched_init
    try:
        yield hasher
    finally:
        Simulator.__init__ = original_init


# -- throughput probes -------------------------------------------------------


def _best_of(fn, repeats: int) -> tuple[int, float]:
    """Run ``fn() -> (n, wall_s)`` ``repeats`` times; keep the fastest.

    A full ``gc.collect()`` precedes every attempt: collection of a
    *previous* probe's cyclic garbage inside this probe's timing window
    is the dominant noise source (measured at up to 2x on the DES
    probe), and flushing it makes the numbers comparable no matter
    what ran earlier in the process.
    """
    import gc

    best_n, best_wall = 0, float("inf")
    for _ in range(max(1, repeats)):
        gc.collect()
        n, wall = fn()
        if wall < best_wall:
            best_n, best_wall = n, wall
    return best_n, best_wall


def _result(n: int, wall_s: float) -> dict:
    return {
        "n": n,
        "wall_s": wall_s,
        "per_sec": n / wall_s if wall_s > 0 else float("inf"),
    }


def des_event_throughput(n: int = 200_000, repeats: int = 3) -> dict:
    """Events/sec through the DES kernel: one process, ``n`` timeouts.

    This is the purest hot-path probe — every iteration is one Timeout
    allocation, one heap push, one heap pop, and one generator resume.
    """

    def once():
        sim = Simulator()

        def chain(sim):
            timeout = sim.timeout
            for _ in range(n):
                yield timeout(1.0)

        sim.process(chain(sim))
        start = time.perf_counter()
        sim.run()
        return n, time.perf_counter() - start

    return _result(*_best_of(once, repeats))


def _speedup_workload(sim, n: int, workload: str) -> int:
    """Arm ``sim`` with one of the speedup workloads; return the
    approximate number of kernel events it will execute.

    Both kernels (live and frozen) expose the same ``timeout``/
    ``process`` surface, so one workload definition serves both sides
    of the comparison.
    """
    if workload == "chain":
        def chain(sim):
            timeout = sim.timeout
            for _ in range(n):
                yield timeout(1.0)

        sim.process(chain(sim))
        return n
    if workload == "mixed":
        # Spawn/park/complete lifecycle: each batch is one process
        # creation (Initialize), two timeouts, the worker's completion
        # event and the spawner's resume — the per-spawn costs the
        # messenger layers pay by the thousand.
        batches = n // 5

        def worker(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        def spawner(sim):
            for _ in range(batches):
                yield sim.process(worker(sim))

        sim.process(spawner(sim))
        return 5 * batches
    raise ValueError(f"unknown speedup workload {workload!r}")


def des_speedup_vs_reference(
    n: int = 60_000, rounds: int = 25, workload: str = "chain"
) -> dict:
    """Live-kernel speedup over the frozen pre-optimisation kernel.

    Runs the same workload ``rounds`` times on each kernel,
    *alternating* between them in one process, and takes the ratio of
    the two **minimum** wall times.  Two details make this robust on
    noisy hosts where absolute throughput drifts by 2-3x:

    * alternation means both kernels sample the same machine
      conditions, so drift cancels out of the ratio;
    * a full ``gc.collect()`` before every timed run stops one
      kernel's cyclic garbage from being collected inside the *other*
      kernel's timing window.

    ``workload`` is ``"chain"`` (one process, ``n`` timeouts — the pure
    event-loop probe) or ``"mixed"`` (process spawn/park/complete
    lifecycle).  Returns ``{"workload", "n", "rounds", "events",
    "live_per_sec", "ref_per_sec", "speedup"}``.
    """
    import gc

    from .slowkernel import SlowSimulator

    def timed(sim_cls):
        sim = sim_cls()
        events = _speedup_workload(sim, n, workload)
        gc.collect()
        start = time.perf_counter()
        sim.run()
        return events, time.perf_counter() - start

    best_live = best_ref = float("inf")
    events = 0
    for _ in range(max(1, rounds)):
        events, ref_wall = timed(SlowSimulator)
        best_ref = min(best_ref, ref_wall)
        _, live_wall = timed(Simulator)
        best_live = min(best_live, live_wall)
    return {
        "workload": workload,
        "n": n,
        "rounds": rounds,
        "events": events,
        "live_per_sec": events / best_live,
        "ref_per_sec": events / best_ref,
        "speedup": best_ref / best_live,
    }


def store_throughput(n: int = 50_000, repeats: int = 3) -> dict:
    """Events/sec through a Store producer/consumer pair.

    Exercises the event-composition machinery the upper layers (daemon
    inboxes, PVM queues, NIC ports) are built from.
    """
    from ..des import Store

    def once():
        sim = Simulator()
        store = Store(sim)

        def producer(sim):
            for i in range(n):
                yield store.put(i)
                yield sim.timeout(0.001)

        def consumer(sim):
            for _ in range(n):
                yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        start = time.perf_counter()
        sim.run()
        # Each iteration is ~4 events (put, get, timeout, resumes).
        return 4 * n, time.perf_counter() - start

    return _result(*_best_of(once, repeats))


#: The opcode probe's inner loop: plain arithmetic, comparisons,
#: variable traffic — the mix Mandelbrot/matmul Messenger scripts run.
_VM_BENCH_SOURCE = """
bench(n) {
    i = 0;
    acc = 0;
    while (i < n) {
        acc = acc + i * 2 - (i % 3);
        if (acc > 1000000) { acc = acc - 1000000; }
        i = i + 1;
    }
    return acc;
}
"""


def _vm_runner(backend: str):
    """Resolve a VM entry point by backend name."""
    if backend == "interp":
        from ..messengers.mcl.vm import run as vm_run

        return vm_run
    if backend == "closures":
        from ..messengers.mcl.closures import run as closures_run

        return closures_run
    raise ValueError(
        f"unknown MCL backend {backend!r}; expected 'interp' or 'closures'"
    )


def vm_opcode_throughput(
    n: int = 20_000, repeats: int = 3, backend: str = "interp"
) -> dict:
    """Opcodes/sec through the MCL VM, no simulator involved.

    ``backend`` selects the int-opcode interpreter (``"interp"``) or the
    basic-block closures compiler (``"closures"``); both execute the
    same bytecode and return identical instruction counts.
    """
    from ..messengers.mcl.compiler import compile_source
    from ..messengers.mcl.vm import Frame

    vm_run = _vm_runner(backend)
    program = compile_source(_VM_BENCH_SOURCE, "bench")

    def once():
        frame = Frame(program)
        variables = {"n": n}
        start = time.perf_counter()
        command = vm_run(
            frame,
            variables,
            {},
            lambda name: 0,
            lambda name, args: 0,
            max_instructions=100_000_000,
        )
        return command.instructions, time.perf_counter() - start

    return _result(*_best_of(once, repeats))


def vm_backend_speedup(n: int = 20_000, rounds: int = 15) -> dict:
    """Closures-backend speedup over the int-opcode interpreter.

    Same methodology as :func:`des_speedup_vs_reference`: the two
    backends run the identical program *alternating* in one process
    (machine drift cancels out of the ratio), ``gc.collect()`` before
    every timed run, ratio of the two minimum wall times.  Returns
    ``{"n", "rounds", "instructions", "interp_per_sec",
    "closures_per_sec", "speedup"}``.
    """
    import gc

    from ..messengers.mcl.compiler import compile_source
    from ..messengers.mcl.vm import Frame

    program = compile_source(_VM_BENCH_SOURCE, "bench")
    runners = {name: _vm_runner(name) for name in ("interp", "closures")}

    def timed(run):
        frame = Frame(program)
        variables = {"n": n}
        gc.collect()
        start = time.perf_counter()
        command = run(
            frame,
            variables,
            {},
            lambda name: 0,
            lambda name, args: 0,
            max_instructions=100_000_000,
        )
        return command.instructions, time.perf_counter() - start

    best = {"interp": float("inf"), "closures": float("inf")}
    instructions = 0
    for _ in range(max(1, rounds)):
        for name, run in runners.items():
            instructions, wall = timed(run)
            best[name] = min(best[name], wall)
    return {
        "n": n,
        "rounds": rounds,
        "instructions": instructions,
        "interp_per_sec": instructions / best["interp"],
        "closures_per_sec": instructions / best["closures"],
        "speedup": best["interp"] / best["closures"],
    }


def net_packet_throughput(
    n: int = 5_000, n_hosts: int = 4, repeats: int = 3
) -> dict:
    """Packets/sec through the netsim transport (wire + endpoint path)."""
    from ..netsim import Packet, build_lan

    def once():
        sim = Simulator()
        network = build_lan(sim, n_hosts)

        def sender(sim):
            for i in range(n):
                dst = f"host{1 + i % (n_hosts - 1)}"
                yield from network.send(
                    Packet(
                        src="host0",
                        dst=dst,
                        port="bench",
                        payload=i,
                        size_bytes=256,
                    )
                )

        def sink(sim, name):
            port = network.host(name).port("bench")
            while True:
                yield port.get()

        sim.process(sender(sim))
        for i in range(1, n_hosts):
            sim.process(sink(sim, f"host{i}"), daemon=True)
        start = time.perf_counter()
        sim.run()
        return n, time.perf_counter() - start

    return _result(*_best_of(once, repeats))


def throughput_suite(scale: float = 1.0, repeats: int = 3) -> dict:
    """All four probes; ``scale`` shrinks the iteration counts for
    smoke-test use (CI runs ``scale=0.25``)."""
    return {
        "des_events": des_event_throughput(
            max(1000, int(200_000 * scale)), repeats
        ),
        "store_events": store_throughput(
            max(500, int(50_000 * scale)), repeats
        ),
        "vm_opcodes": vm_opcode_throughput(
            max(500, int(20_000 * scale)), repeats
        ),
        "net_packets": net_packet_throughput(
            max(200, int(5_000 * scale)), repeats=repeats
        ),
    }
