"""Frozen pre-optimisation DES kernel, kept as a measuring stick.

This is a faithful copy of the event kernel's hot path as it stood
*before* the fast path landed: dict-based event objects, an
``itertools.count`` event-id counter, a method-call ``schedule``, a
step-per-event run loop with a per-event metrics test, and a process
resume loop that tracks ``_target``/``_active_process`` and type-checks
every yielded value — all the per-event work the optimisation removed.

It exists for exactly one purpose: the throughput benchmarks compare
the live kernel against this one **in the same process, back-to-back**,
so the ≥2× speedup assertion is a ratio of two numbers measured under
identical machine conditions and is immune to host noise.  Nothing in
the simulator stack may import from this module except the benchmarks.

Do not optimise this file.  Its slowness is the point.
"""

from __future__ import annotations

import heapq
import itertools
import time
from types import GeneratorType
from typing import Any, Callable, Optional

from ..des.errors import SimulationError, StopSimulation

__all__ = [
    "SlowEvent",
    "SlowTimeout",
    "SlowProcess",
    "SlowSimulator",
    "des_event_throughput_reference",
]

_PENDING = object()

_URGENT = 0
_NORMAL = 1


class SlowEvent:
    """The original Event: plain ``__dict__``, schedule via method call."""

    def __init__(self, sim: "SlowSimulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    def defuse(self) -> None:
        self._defused = True

    def succeed(self, value: Any = None) -> "SlowEvent":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "SlowEvent":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self


class SlowTimeout(SlowEvent):
    """The original Timeout: full ``__init__`` chain, scheduled eagerly."""

    def __init__(
        self,
        sim: "SlowSimulator",
        delay: float,
        value: Any = None,
        daemon: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self.daemon = daemon
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay, daemon=daemon)


class _SlowInitialize(SlowEvent):
    def __init__(self, sim, process: "SlowProcess"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        sim.schedule(self, priority=_URGENT)


class SlowProcess(SlowEvent):
    """The original Process: uncached bound methods, per-yield
    ``isinstance`` checks, target tracking, active-process bookkeeping."""

    def __init__(self, sim, generator, daemon: bool = False):
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self.daemon = daemon
        self._target: Optional[SlowEvent] = _SlowInitialize(sim, self)
        sim._live_processes.add(self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, event: SlowEvent) -> None:
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event is None or event._ok:
                        next_target = self._generator.send(
                            None if event is None else event._value
                        )
                    else:
                        event.defuse()
                        next_target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.sim._live_processes.discard(self)
                    self.succeed(stop.value)
                    return
                except BaseException as error:
                    self._target = None
                    self.sim._live_processes.discard(self)
                    self.fail(error)
                    return

                if not isinstance(next_target, SlowEvent):
                    raise TypeError(
                        f"slow process yielded a non-event: {next_target!r}"
                    )
                if next_target.callbacks is not None:
                    next_target.callbacks.append(self._resume)
                    self._target = next_target
                    return
                event = next_target
        finally:
            self.sim._active_process = None


class SlowSimulator:
    """The original Simulator: ``itertools.count`` ids, step() per event,
    a metrics test per event, and ``len(queue)`` in the loop condition."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._eid = itertools.count()
        self._active_process = None
        self._metrics_events = None
        self._fg_pending: int = 0
        self._live_processes: set = set()

    @property
    def now(self) -> float:
        return self._now

    def event(self) -> SlowEvent:
        return SlowEvent(self)

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> SlowTimeout:
        return SlowTimeout(self, delay, value, daemon=daemon)

    def process(self, generator, daemon: bool = False) -> SlowProcess:
        # The historical kernel resolved its Process class with a
        # ``from .process import Process`` *inside* this method — a
        # sys.modules hit per spawn.  Keep an equivalent import here so
        # the reference pays the same cost.
        from ..des import process as _process_module  # noqa: F401

        return SlowProcess(self, generator, daemon=daemon)

    def schedule(
        self,
        event: SlowEvent,
        delay: float = 0.0,
        priority: int = _NORMAL,
        daemon: bool = False,
    ) -> None:
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, next(self._eid), daemon, event),
        )
        if not daemon:
            self._fg_pending += 1

    def step(self) -> None:
        time_, _prio, _eid, daemon, event = heapq.heappop(self._queue)
        self._now = time_
        if not daemon:
            self._fg_pending -= 1
        if self._metrics_events is not None:
            self._metrics_events.value += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self) -> None:
        try:
            while self._queue and self._fg_pending > 0:
                self.step()
        except StopSimulation:
            pass


def des_event_throughput_reference(
    n: int = 200_000, repeats: int = 3
) -> dict:
    """The same chain workload as
    :func:`repro.perf.des_event_throughput`, run on the frozen kernel.

    Dividing the live probe's ``per_sec`` by this one's gives the
    speedup ratio the benchmarks assert on.
    """
    from . import _best_of, _result

    def once():
        sim = SlowSimulator()

        def chain(sim):
            timeout = sim.timeout
            for _ in range(n):
                yield timeout(1.0)

        sim.process(chain(sim))
        start = time.perf_counter()
        sim.run()
        return n, time.perf_counter() - start

    return _result(*_best_of(once, repeats))
