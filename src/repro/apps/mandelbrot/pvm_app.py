"""Mandelbrot via message-passing manager/worker — Figure 2 of the paper.

A faithful transcription of the paper's PVM pseudo-code onto
:mod:`repro.mp`, including the details Figure 2 "abstracted away for
clarity" but a real PVM program must pay for: spawning the workers,
packing/unpacking every task and result buffer, and the final
collect-and-kill loop.

The manager runs on ``host0``; worker ``w`` runs on ``host{w+1}`` — so a
run with *P processors* (the x-axis of Figures 4–6) uses ``P`` worker
hosts plus the manager host, symmetrically with the MESSENGERS version
whose central node lives on a daemon of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...des import Simulator
from ...mp import ANY, MessagePassingSystem, PackBuffer
from ...netsim import CostModel, DEFAULT_COSTS, build_lan
from .kernel import TaskGrid, block_flops, compute_block

__all__ = ["PvmMandelbrotResult", "run_pvm"]

_TAG_TASK = 1
_TAG_RESULT = 2
_TAG_NOTIFY = 3


@dataclass
class PvmMandelbrotResult:
    image: "np.ndarray"
    seconds: float  # simulated wall-clock of the whole job
    n_workers: int
    messages: int = 0
    stats: dict = field(default_factory=dict)


def _worker(ctx, grid: TaskGrid):
    """Figure 2, worker_func: recv task, compute, send result, repeat."""
    while True:
        message = yield from ctx.recv(src=ctx.parent, tag=_TAG_TASK)
        block_index = message.buffer.unpack_ints()[0]
        block = grid.block(block_index)
        colors, iterations = compute_block(grid, block)
        yield from ctx.compute(block_flops(iterations))
        reply = PackBuffer()
        reply.pack_int(block_index)
        reply.pack_array(colors)  # int16: 2 bytes/pixel on the wire
        yield from ctx.send(ctx.parent, reply, tag=_TAG_RESULT)


def _manager(ctx, grid: TaskGrid, n_workers: int, results: dict):
    """Figure 2, manager(): spawn, pump tasks, collect, kill.

    Beyond Figure 2, the manager subscribes to ``pvm_notify``-style
    TaskExit messages and re-queues the block a dead worker was holding
    — the retry path a fault-tolerant PVM program needs once the fault
    layer can crash worker hosts.  In a fault-free run no notification
    ever arrives and the send/recv sequence is exactly Figure 2's.
    """
    worker_hosts = [f"host{w + 1}" for w in range(n_workers)]
    workers = yield from ctx.spawn(
        _worker, grid, count=n_workers, hosts=worker_hosts
    )
    ctx.notify_task_exit(workers, tag=_TAG_NOTIFY)

    pending = list(range(len(grid)))
    assigned: dict[int, int] = {}  # worker tid -> block in its hands
    idle: list[int] = []
    dead: set[int] = set()

    def next_task():
        return pending.pop(0) if pending else None

    def task_buffer(block_index):
        buf = PackBuffer()
        buf.pack_ints(
            [block_index, 0, 0, 0, 0]  # index + geometry, 40 bytes
        )
        return buf

    # Prime every worker with one task (lines 4-5).
    for worker in workers:
        block_index = next_task()
        if block_index is None:
            break
        yield from ctx.send(worker, task_buffer(block_index), tag=_TAG_TASK)
        assigned[worker] = block_index

    # Main pump (lines 6-10, plus the notify branch): collect results
    # and hand out work until every block is accounted for.
    while len(results) < len(grid):
        message = yield from ctx.recv(src=ANY, tag=ANY)
        if message.tag == _TAG_RESULT:
            done_index = message.buffer.unpack_int()
            results[done_index] = message.buffer.unpack_array()
            assigned.pop(message.src, None)
            if message.src in dead:
                continue  # posthumous result; don't feed a ghost
            block_index = next_task()
            if block_index is not None:
                yield from ctx.send(
                    message.src, task_buffer(block_index), tag=_TAG_TASK
                )
                assigned[message.src] = block_index
            else:
                idle.append(message.src)
        elif message.tag == _TAG_NOTIFY:
            dead_tid = message.buffer.unpack_int()
            dead.add(dead_tid)
            block_index = assigned.pop(dead_tid, None)
            if block_index is not None and block_index not in results:
                pending.append(block_index)
            if dead_tid in idle:
                idle.remove(dead_tid)
            while pending and idle:
                worker = idle.pop(0)
                block_index = next_task()
                yield from ctx.send(
                    worker, task_buffer(block_index), tag=_TAG_TASK
                )
                assigned[worker] = block_index

    # Kill the workers (lines 11-15).
    for worker in workers:
        ctx.kill(worker)
    ctx.exit()


def run_pvm(
    grid: TaskGrid,
    n_workers: int,
    costs: CostModel = DEFAULT_COSTS,
    metrics=None,
    faults=None,
    seed: int = 0,
    resilience=None,
) -> PvmMandelbrotResult:
    """Run the Figure-2 program; returns image + simulated seconds.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.MetricsRegistry` to the run's simulator
    (``python -m repro stats --system pvm`` uses this).  ``faults``
    optionally attaches a :class:`~repro.faults.FaultPlan` (replayed
    deterministically from ``seed``); recovery statistics then land in
    ``result.stats["faults"]``.  ``resilience`` optionally arms a
    :class:`~repro.resilience.ResiliencePolicy`; its statistics land in
    ``result.stats["resilience"]``.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    sim = Simulator()
    if metrics is not None:
        sim.metrics = metrics
    network = build_lan(sim, n_workers + 1, costs)  # host0 = manager
    system = MessagePassingSystem(network)
    injector = None
    if faults is not None:
        from ...faults import FaultInjector

        injector = FaultInjector(network, faults, seed=seed)
    suite = None
    if resilience is not None:
        from ...resilience import ResilienceSuite

        suite = ResilienceSuite(network, resilience, seed=seed)
    results: dict[int, np.ndarray] = {}
    manager_tid = system.spawn(_manager, grid, n_workers, results)
    system.run_until_task(manager_tid)
    elapsed = sim.now
    sim.run()  # let worker-kill interrupts settle
    stats = {}
    if injector is not None:
        stats["faults"] = dict(injector.counts)
    if suite is not None:
        suite.check_final()
        stats["resilience"] = suite.stats()
    return PvmMandelbrotResult(
        image=grid.assemble(results),
        seconds=elapsed,
        n_workers=n_workers,
        messages=network.delivered,
        stats=stats,
    )
