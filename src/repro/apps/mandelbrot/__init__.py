"""Mandelbrot-set generation via manager/worker (§3.1).

Three implementations over one kernel:

* :func:`run_sequential` — the sequential-C baseline;
* :func:`run_pvm` — Figure 2's manager/worker in message passing;
* :func:`run_messengers` — Figure 3's single "smart worker" script.

All three produce pixel-identical images; they differ in simulated
execution time, which is what Figures 4–7 plot.
"""

from .kernel import (
    BYTES_PER_PIXEL,
    Block,
    FLOPS_PER_ITERATION,
    PAPER_COLORS,
    PAPER_REGION,
    TaskGrid,
    block_flops,
    compute_block,
)
from .messengers_app import (
    MANAGER_WORKER_SCRIPT,
    MessengersMandelbrotResult,
    run_messengers,
)
from .pvm_app import PvmMandelbrotResult, run_pvm
from .sequential import SequentialResult, run_sequential

__all__ = [
    "BYTES_PER_PIXEL",
    "Block",
    "FLOPS_PER_ITERATION",
    "MANAGER_WORKER_SCRIPT",
    "MessengersMandelbrotResult",
    "PAPER_COLORS",
    "PAPER_REGION",
    "PvmMandelbrotResult",
    "SequentialResult",
    "TaskGrid",
    "block_flops",
    "compute_block",
    "run_messengers",
    "run_pvm",
    "run_sequential",
]
