"""Sequential-C baseline for the Mandelbrot experiment (§3.1.2).

One host computes every block in order; simulated time is the sum of the
per-block compute charges.  This is the "sequential algorithm in C
running on a single workstation" curve of Figures 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...des import Simulator
from ...netsim import CostModel, DEFAULT_COSTS, Host
from .kernel import TaskGrid, block_flops, compute_block

__all__ = ["SequentialResult", "run_sequential"]


@dataclass
class SequentialResult:
    image: "np.ndarray"
    seconds: float  # simulated
    total_iterations: float


def run_sequential(
    grid: TaskGrid, costs: CostModel = DEFAULT_COSTS
) -> SequentialResult:
    """Compute the full image on one simulated workstation."""
    sim = Simulator()
    host = Host(sim, "seq", costs)
    results: dict[int, np.ndarray] = {}
    total_iterations = 0.0

    def driver(sim):
        nonlocal total_iterations
        for block in grid:
            colors, iterations = compute_block(grid, block)
            results[block.index] = colors
            total_iterations += iterations
            yield sim.process(host.compute(block_flops(iterations)))

    process = sim.process(driver(sim))
    sim.run(until=process)
    return SequentialResult(
        image=grid.assemble(results),
        seconds=sim.now,
        total_iterations=total_iterations,
    )
