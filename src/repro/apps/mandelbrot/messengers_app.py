"""Mandelbrot via MESSENGERS "smart workers" — Figure 3 of the paper.

The single Messenger script below *is* Figure 3 (§3.1): one behavior,
injected at the central daemon's ``init`` node, that clones itself into
a worker per neighboring daemon with ``create(ALL)`` and then shuttles
between its work node and the central node, picking up tasks and
depositing results.  There is no manager; the central node's variables
(guarded by the non-preemptive scheduler, so ``next_task``/``deposit``
need no locks) are the task pool and the result store.

Natives:

* ``next_task()`` — pop the next unprocessed block id (0 = done);
* ``compute(task)`` — compute the block, *carrying the pixel colors in
  a messenger variable* (so they migrate zero-copy on the hop back);
* ``deposit(res)`` — store the colors at the central node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...des import Simulator
from ...messengers import MessengersSystem
from ...netsim import CostModel, DEFAULT_COSTS, build_lan
from .kernel import TaskGrid, block_flops, compute_block

__all__ = ["MessengersMandelbrotResult", "MANAGER_WORKER_SCRIPT", "run_messengers"]

#: Figure 3, verbatim modulo concrete syntax (0 = NULL sentinel).
MANAGER_WORKER_SCRIPT = """
manager_worker() {
    create(ALL);
    hop(ll = $last);
    while ((task = next_task()) != 0) {
        hop(ll = $last);
        res = compute(task);
        hop(ll = $last);
        deposit(res);
    }
}
"""


@dataclass
class MessengersMandelbrotResult:
    image: "np.ndarray"
    seconds: float  # simulated wall-clock
    n_workers: int
    hops_local: int = 0
    hops_remote: int = 0
    instructions: int = 0
    stats: dict = field(default_factory=dict)


def run_messengers(
    grid: TaskGrid,
    n_workers: int,
    costs: CostModel = DEFAULT_COSTS,
    metrics=None,
    faults=None,
    seed: int = 0,
    resilience=None,
) -> MessengersMandelbrotResult:
    """Run the Figure-3 program; returns image + simulated seconds.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.MetricsRegistry` to the run's simulator
    (``python -m repro stats`` uses this for the cost breakdown).
    ``faults`` optionally attaches a :class:`~repro.faults.FaultPlan`
    (replayed deterministically from ``seed``); recovery statistics then
    land in ``result.stats["faults"]``.  ``resilience`` optionally arms
    a :class:`~repro.resilience.ResiliencePolicy` (failure detector,
    supervision, flow control); its statistics land in
    ``result.stats["resilience"]``.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    sim = Simulator()
    if metrics is not None:
        sim.metrics = metrics
    # host0 carries the central node; one worker daemon per processor.
    network = build_lan(sim, n_workers + 1, costs)
    system = MessengersSystem(network)
    injector = None
    if faults is not None:
        from ...faults import FaultInjector

        injector = FaultInjector(network, faults, seed=seed)
    suite = None
    if resilience is not None:
        from ...resilience import ResilienceSuite

        suite = ResilienceSuite(network, resilience, seed=seed)

    results: dict[int, np.ndarray] = {}
    central = system.daemon("host0").init_node
    # The central node's variables form the task pool — a data structure
    # that exists *without any process guarding it* (§3.1.1).
    central.variables["tasks"] = list(range(len(grid)))

    @system.natives.register
    def next_task(env):
        tasks = env.node_vars["tasks"]
        if not tasks:
            return 0
        env.charge_seconds(1e-6)  # queue pop
        return tasks.pop(0) + 1  # 1-based; 0 means "no more work"

    @system.natives.register
    def compute(env, task):
        block = grid.block(task - 1)
        colors, iterations = compute_block(grid, block)
        env.charge_flops(block_flops(iterations))
        # The result rides along as a messenger variable: no
        # marshalling copies, but its bytes are charged on the hop.
        env.msgr_vars["pixels"] = colors
        return task - 1

    @system.natives.register
    def deposit(env, res):
        colors = env.msgr_vars.pop("pixels")
        results[res] = colors
        env.charge_memcpy(colors.nbytes)
        return 0

    system.inject(MANAGER_WORKER_SCRIPT, daemon="host0")
    elapsed = system.run_to_quiescence()

    local, remote = system.total_hops()
    stats = {}
    if injector is not None:
        stats["faults"] = dict(injector.counts)
    if suite is not None:
        suite.check_final()
        stats["resilience"] = suite.stats()
    return MessengersMandelbrotResult(
        image=grid.assemble(results),
        seconds=elapsed,
        n_workers=n_workers,
        hops_local=local,
        hops_remote=remote,
        instructions=system.total_instructions(),
        stats=stats,
    )
