"""Mandelbrot-set computation kernel and task grid (§3.1.2).

The paper's workload: for each pixel, iterate ``z ← z² + c`` until
``|z| > 2`` or the color count (512) is exhausted; the pixel's color is
the escape iteration.  The image region, color count, resolutions and
grid decompositions below are exactly the paper's parameters.

The kernel computes *real* pixel values with numpy (so correctness of
the distributed versions is checkable against the sequential one), and
separately reports the *operation count* from which simulated compute
time is charged — keeping measured virtual time independent of the
speed of the machine running the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "PAPER_REGION",
    "PAPER_COLORS",
    "FLOPS_PER_ITERATION",
    "BYTES_PER_PIXEL",
    "Block",
    "TaskGrid",
    "compute_block",
    "clear_block_cache",
    "block_flops",
]

#: The paper's image region (x_min, y_min, x_max, y_max).
PAPER_REGION = (-2.0, -1.2, 0.4, 1.2)
#: The paper's fixed number of colors.
PAPER_COLORS = 512

#: Floating-point work of one z ← z²+c step (complex square, add,
#: magnitude test) — the unit from which compute time is charged.
FLOPS_PER_ITERATION = 10.0

#: Pixels travel as 16-bit color indices (512 colors fit comfortably).
BYTES_PER_PIXEL = 2


@dataclass(frozen=True)
class Block:
    """One grid block: a rectangle of pixels to compute."""

    index: int
    row0: int  # first pixel row (y)
    col0: int  # first pixel column (x)
    rows: int
    cols: int

    @property
    def pixels(self) -> int:
        return self.rows * self.cols

    @property
    def result_bytes(self) -> int:
        """Wire size of this block's computed colors."""
        return self.pixels * BYTES_PER_PIXEL

    #: Wire size of a task descriptor (block index + geometry).
    DESCRIPTOR_BYTES = 40


class TaskGrid:
    """Decomposition of one image into ``grid × grid`` blocks (§3.1.2).

    ``image_size`` is the square image's side in pixels; ``grid`` the
    number of blocks per side (the paper uses 8, 16, 32).
    """

    def __init__(
        self,
        image_size: int,
        grid: int,
        region: tuple = PAPER_REGION,
        colors: int = PAPER_COLORS,
    ):
        if image_size <= 0 or grid <= 0:
            raise ValueError("image_size and grid must be positive")
        if grid > image_size:
            raise ValueError(
                f"grid {grid} exceeds image size {image_size}"
            )
        self.image_size = image_size
        self.grid = grid
        self.region = region
        self.colors = colors
        self.blocks: list[Block] = []
        bounds = np.linspace(0, image_size, grid + 1, dtype=int)
        index = 0
        for bi in range(grid):
            for bj in range(grid):
                r0, r1 = bounds[bi], bounds[bi + 1]
                c0, c1 = bounds[bj], bounds[bj + 1]
                self.blocks.append(
                    Block(index, int(r0), int(c0), int(r1 - r0),
                          int(c1 - c0))
                )
                index += 1

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def block(self, index: int) -> Block:
        return self.blocks[index]

    def assemble(self, results: dict) -> np.ndarray:
        """Merge per-block color arrays into the full image."""
        image = np.zeros(
            (self.image_size, self.image_size), dtype=np.int16
        )
        if set(results) != set(range(len(self.blocks))):
            missing = sorted(set(range(len(self.blocks))) - set(results))
            raise ValueError(f"missing blocks: {missing[:10]}")
        for index, colors in results.items():
            block = self.blocks[index]
            image[
                block.row0 : block.row0 + block.rows,
                block.col0 : block.col0 + block.cols,
            ] = colors
        return image


#: Memo of computed blocks keyed by (grid parameters, block index).
#: Parameter sweeps (Figures 4–7 re-run the same image for many
#: processor counts) redo only the *simulation*, not the numpy work.
_BLOCK_CACHE: dict = {}


def clear_block_cache() -> None:
    """Drop memoized block results (mainly for tests)."""
    _BLOCK_CACHE.clear()


def compute_block(
    grid: TaskGrid, block: Block
) -> tuple[np.ndarray, float]:
    """Compute one block's colors; returns ``(colors, iterations)``.

    ``colors`` is an int16 array of escape iterations (the pixel color);
    ``iterations`` is the total number of z-steps executed, from which
    simulated compute time is charged (work per pixel is unknown a
    priori — the paper's motivation for manager/worker).

    Results are memoized on the grid's parameters: identical blocks in
    repeated runs return (a copy of) the cached colors.
    """
    key = (
        grid.image_size,
        grid.grid,
        grid.region,
        grid.colors,
        block.index,
    )
    cached = _BLOCK_CACHE.get(key)
    if cached is not None:
        colors, iterations = cached
        return colors.copy(), iterations
    x_min, y_min, x_max, y_max = grid.region
    n = grid.image_size
    xs = x_min + (x_max - x_min) * (
        np.arange(block.col0, block.col0 + block.cols) + 0.5
    ) / n
    ys = y_min + (y_max - y_min) * (
        np.arange(block.row0, block.row0 + block.rows) + 0.5
    ) / n
    c = xs[np.newaxis, :] + 1j * ys[:, np.newaxis]

    z = np.zeros_like(c)
    colors = np.zeros(c.shape, dtype=np.int16)
    live = np.ones(c.shape, dtype=bool)
    total_iterations = 0.0
    for iteration in range(1, grid.colors + 1):
        z[live] = z[live] * z[live] + c[live]
        escaped = live & (np.abs(z) > 2.0)
        colors[escaped] = iteration
        total_iterations += float(live.sum())
        live &= ~escaped
        if not live.any():
            break
    # pixels that never escape keep color 0 (inside the set)
    _BLOCK_CACHE[key] = (colors, total_iterations)
    return colors.copy(), total_iterations


def block_flops(iterations: float) -> float:
    """Simulated floating-point operations for an iteration count."""
    return iterations * FLOPS_PER_ITERATION
