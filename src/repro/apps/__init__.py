"""The paper's two evaluation applications (§3), each programmed three
ways: sequential, message-passing (PVM workalike), and MESSENGERS.

* :mod:`repro.apps.mandelbrot` — manager/worker Mandelbrot (§3.1,
  Figures 2–7);
* :mod:`repro.apps.matmul` — block matrix multiplication with
  virtual-time coordination (§3.2, Figures 9–12).
"""
