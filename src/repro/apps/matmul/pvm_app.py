"""Block matrix multiplication via message passing — Figure 9 (§3.2).

A transcription of the paper's PVM program: ``m × m`` worker tasks, one
per processor, each owning blocks ``A[i,j]``, ``B[i,j]`` and ``C[i,j]``.
Each iteration ``k``:

1. the row-``i`` worker holding the travelling diagonal
   (``j == (i+k) mod m``) multicasts its A block to its row;
2. everyone multiplies the received A block with its current B block
   into C;
3. B blocks rotate one step up their column (send north, receive from
   south).

As the paper assumes, the matrices are "already distributed over the
network (as a result of previous computations)": workers are created
pre-loaded with their blocks and the measured interval starts at t=0
with no spawn cost — identically for the MESSENGERS version.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...des import Simulator
from ...mp import MessagePassingSystem, PackBuffer
from ...netsim import CostModel, DEFAULT_COSTS, build_lan
from .kernel import block_multiply_add, block_of, multiply_flops, multiply_working_set

__all__ = ["PvmMatmulResult", "run_pvm"]

_TAG_A = 10
_TAG_B = 11


@dataclass
class PvmMatmulResult:
    c: "np.ndarray"
    seconds: float  # simulated
    m: int
    s: int
    messages: int = 0


def _worker(ctx, m, s, i, j, block_a, block_b, block_c, out, tids):
    """Figure 9's worker body (the manager's spawn loop is hoisted into
    :func:`run_pvm`, which plays the pre-distribution role)."""
    flops = multiply_flops(s)
    working_set = multiply_working_set(s)
    my_row = [tids[(i, q)] for q in range(m)]

    current_b = block_b
    c = block_c
    for k in range(m):
        if j == (i + k) % m:
            buf = PackBuffer()
            buf.pack_array(block_a)
            yield from ctx.mcast(my_row, buf, tag=_TAG_A)
            current_a = block_a
        else:
            message = yield from ctx.recv(tag=_TAG_A)
            current_a = message.buffer.unpack_array()

        c = block_multiply_add(c, current_a, current_b)
        yield from ctx.compute(flops, working_set)

        if m > 1:
            north = tids[((i - 1) % m, j)]
            buf = PackBuffer()
            buf.pack_array(current_b)
            yield from ctx.send(north, buf, tag=_TAG_B)
            message = yield from ctx.recv(tag=_TAG_B)
            current_b = message.buffer.unpack_array()

    out[(i, j)] = c


def run_pvm(
    a: "np.ndarray",
    b: "np.ndarray",
    m: int,
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
) -> PvmMatmulResult:
    """Run the Figure-9 program on an ``m × m`` grid of hosts."""
    n = a.shape[0]
    if n % m:
        raise ValueError(f"matrix size {n} not divisible by grid {m}")
    s = n // m
    sim = Simulator()
    network = build_lan(sim, m * m, costs, cpu_scale=cpu_scale)
    system = MessagePassingSystem(network)

    out: dict = {}
    # Pre-distribution: allocate tids first so every worker knows its
    # row and column neighbours, then start them all at t=0.
    tids: dict = {}
    behaviors = []
    for i in range(m):
        for j in range(m):
            host = f"host{i * m + j}"
            blocks = (
                block_of(a, i, j, s),
                block_of(b, i, j, s),
                np.zeros((s, s)),
            )
            behaviors.append(((i, j), host, blocks))

    # Reserve tids in deterministic order by spawning placeholders that
    # wait for the tid map before running the real body.
    ready = sim.event()

    def _gated(ctx, i, j, blocks):
        yield ready
        yield from _worker(
            ctx, m, s, i, j, blocks[0], blocks[1], blocks[2], out, tids
        )

    for (i, j), host, blocks in behaviors:
        tids[(i, j)] = system.spawn(_gated, i, j, blocks, host=host)
    ready.succeed()

    last = [tids[key] for key in tids]
    for tid in last:
        system.run_until_task(tid)

    c = np.zeros_like(a)
    for (i, j), block in out.items():
        c[i * s : (i + 1) * s, j * s : (j + 1) * s] = block
    return PvmMatmulResult(
        c=c, seconds=sim.now, m=m, s=s, messages=network.delivered
    )
