"""Block matrix multiplication via MESSENGERS — Figures 10 & 11 (§3.2).

The *data-centric* version: the logical network of Figure 10 (rows =
fully connected ``row`` subnets, columns = upward-directed ``column``
rings) is built by ``net_builder``; matrices live pre-distributed in
node variables ``resid_A`` / ``resid_B`` / ``C``; and two Messenger
scripts — each the embodiment of one matrix block — coordinate purely
through global virtual time:

* ``distribute_A`` instances wake at integer ticks ``(j−i) mod m`` and
  replicate their A block along the row;
* ``rotate_B`` instances wake at half ticks ``k + 0.5``, multiply, and
  carry their B block one node up the column.

The scripts below are Figure 11 with two fidelity notes: (a) the
travelling diagonal also deposits its block at its *own* node before
hopping (the paper's prose implies it; ``hop`` replicas go only to the
other row nodes); (b) the paper's listing suspends with
``M_sched_time_dlt(.5)`` but its prose specifies wake-ups at ``k+0.5``
— we schedule absolutely, which matches the prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...des import Simulator
from ...messengers import MessengersSystem, build_grid, grid_node_name
from ...netsim import CostModel, DEFAULT_COSTS, build_lan
from .kernel import (
    block_multiply_add,
    block_of,
    multiply_flops,
    multiply_working_set,
)

__all__ = [
    "MessengersMatmulResult",
    "DISTRIBUTE_A_SCRIPT",
    "ROTATE_B_SCRIPT",
    "run_messengers",
]

#: Figure 11, distribute_A (see module docstring for the two notes).
DISTRIBUTE_A_SCRIPT = """
distribute_A(s, m, i, j) {
    node resid_A, curr_A;
    M_sched_time_abs((j - i) mod m);
    msgr_A = copy_block(resid_A);
    curr_A = copy_block(msgr_A);
    hop(ll = "row");
    curr_A = copy_block(msgr_A);
}
"""

#: Figure 11, rotate_B.
ROTATE_B_SCRIPT = """
rotate_B(s, m, i, j) {
    node resid_B, curr_A, C;
    msgr_B = copy_block(resid_B);
    for (k = 0; k < m; k++) {
        M_sched_time_abs(k + 0.5);  /* synchronization */
        C = block_multiply(msgr_B, curr_A, C);
        hop(ll = "column"; ldir = +);  /* rotate B to row i-1 */
    }
}
"""


@dataclass
class MessengersMatmulResult:
    c: "np.ndarray"
    seconds: float  # simulated
    m: int
    s: int
    gvt_rounds: int = 0
    hops_remote: int = 0


def run_messengers(
    a: "np.ndarray",
    b: "np.ndarray",
    m: int,
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
) -> MessengersMatmulResult:
    """Run the Figure-11 program on an ``m × m`` grid of daemons."""
    n = a.shape[0]
    if n % m:
        raise ValueError(f"matrix size {n} not divisible by grid {m}")
    s = n // m
    sim = Simulator()
    network = build_lan(sim, m * m, costs, cpu_scale=cpu_scale)
    system = MessengersSystem(network)
    nodes = build_grid(system, m)

    flops = multiply_flops(s)
    working_set = multiply_working_set(s)

    # Pre-distribution (§3.2: "we assume that the matrices are already
    # distributed over the network").
    for i in range(m):
        for j in range(m):
            node = nodes[grid_node_name(i, j)]
            node.variables["resid_A"] = block_of(a, i, j, s)
            node.variables["resid_B"] = block_of(b, i, j, s)
            node.variables["C"] = np.zeros((s, s))

    @system.natives.register
    def copy_block(env, block):
        env.charge_memcpy(block.nbytes)
        return block.copy()

    @system.natives.register
    def block_multiply(env, msgr_b, curr_a, c):
        env.charge_flops(flops, working_set)
        return block_multiply_add(c, curr_a, msgr_b)

    # One instance of each script per grid node (Figure 11: "an
    # instance of each is injected into every node").
    dist_prog = system.compile(DISTRIBUTE_A_SCRIPT)
    rot_prog = system.compile(ROTATE_B_SCRIPT)
    for i in range(m):
        for j in range(m):
            node_name = grid_node_name(i, j)
            daemon = nodes[node_name].daemon
            system.inject(
                dist_prog, args=(s, m, i, j), daemon=daemon, node=node_name
            )
            system.inject(
                rot_prog, args=(s, m, i, j), daemon=daemon, node=node_name
            )

    elapsed = system.run_to_quiescence()

    c = np.zeros_like(a)
    for i in range(m):
        for j in range(m):
            c[i * s : (i + 1) * s, j * s : (j + 1) * s] = nodes[
                grid_node_name(i, j)
            ].variables["C"]
    _local, remote = system.total_hops()
    return MessengersMatmulResult(
        c=c,
        seconds=elapsed,
        m=m,
        s=s,
        gvt_rounds=system.vtime.rounds,
        hops_remote=remote,
    )
