"""Sequential matrix-multiplication baselines (§3.2).

Two versions, as in the paper:

* **naive** — the triply nested loop.  Its working set is the whole
  three-matrix footprint, so on the cache model it runs at the
  streaming-penalty rate; this is what makes the paper's parallel
  speedups super-linear relative to it.
* **blocked** — partition into ``m × m`` blocks and multiply
  block-by-block; each block multiply touches only ``3 s²`` doubles,
  recovering cache locality.  The paper reports ≈13% improvement for
  1500×1500 partitioned into 9 blocks of 500×500 (experiment TXT-BLK).

Both versions do the real numpy arithmetic once and charge simulated
time from the flop/working-set model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...des import Simulator
from ...netsim import CostModel, DEFAULT_COSTS, Host
from .kernel import (
    BYTES_PER_ELEMENT,
    block_multiply_add,
    block_of,
    multiply_flops,
    multiply_working_set,
    set_block,
)

__all__ = ["SequentialMatmulResult", "run_naive", "run_blocked"]


@dataclass
class SequentialMatmulResult:
    c: "np.ndarray"
    seconds: float  # simulated
    algorithm: str


def run_naive(
    a: "np.ndarray",
    b: "np.ndarray",
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
) -> SequentialMatmulResult:
    """The triply nested loop: one big multiply, streaming working set."""
    n = a.shape[0]
    sim = Simulator()
    host = Host(sim, "seq", costs, cpu_scale=cpu_scale)
    out = {}

    def driver(sim):
        out["c"] = a @ b
        working_set = 3.0 * n * n * BYTES_PER_ELEMENT
        yield sim.process(
            host.compute(multiply_flops(n), working_set)
        )

    process = sim.process(driver(sim))
    sim.run(until=process)
    return SequentialMatmulResult(out["c"], sim.now, "naive")


def run_blocked(
    a: "np.ndarray",
    b: "np.ndarray",
    m: int,
    costs: CostModel = DEFAULT_COSTS,
    cpu_scale: float = 1.0,
) -> SequentialMatmulResult:
    """Block-partitioned multiply: m³ cache-friendly block multiplies."""
    n = a.shape[0]
    if n % m:
        raise ValueError(f"matrix size {n} not divisible by grid {m}")
    s = n // m
    sim = Simulator()
    host = Host(sim, "seq", costs, cpu_scale=cpu_scale)
    c = np.zeros_like(a)

    def driver(sim):
        flops = multiply_flops(s)
        working_set = multiply_working_set(s)
        for i in range(m):
            for j in range(m):
                acc = block_of(c, i, j, s)
                for k in range(m):
                    acc = block_multiply_add(
                        acc, block_of(a, i, k, s), block_of(b, k, j, s)
                    )
                    yield sim.process(host.compute(flops, working_set))
                set_block(c, i, j, s, acc)

    process = sim.process(driver(sim))
    sim.run(until=process)
    return SequentialMatmulResult(c, sim.now, f"blocked-{m}x{m}")
