"""Block matrix-multiplication kernel and work accounting (§3.2).

The paper's algorithm partitions ``n × n`` matrices into ``m × m``
blocks of size ``s × s`` (``n = m·s``) and runs m iterations of
distribute-A / block-multiply / rotate-B.  This module provides the
real numpy arithmetic plus the flop/working-set accounting both the
sequential baselines and the distributed versions charge simulated time
from.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BYTES_PER_ELEMENT",
    "block_of",
    "set_block",
    "make_matrices",
    "multiply_flops",
    "multiply_working_set",
    "block_multiply_add",
]

#: Matrix elements are C doubles.
BYTES_PER_ELEMENT = 8


def make_matrices(n: int, seed: int = 0):
    """Deterministic random ``n × n`` operand matrices A and B."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    return a, b


def block_of(matrix: "np.ndarray", i: int, j: int, s: int) -> "np.ndarray":
    """Copy of block ``[i, j]`` (the paper's ``A[i,j]`` notation)."""
    return matrix[i * s : (i + 1) * s, j * s : (j + 1) * s].copy()


def set_block(
    matrix: "np.ndarray", i: int, j: int, s: int, value: "np.ndarray"
) -> None:
    """Store ``value`` into block ``[i, j]``."""
    matrix[i * s : (i + 1) * s, j * s : (j + 1) * s] = value


def multiply_flops(s: int) -> float:
    """Floating-point operations of one ``s × s`` block multiply-add."""
    return 2.0 * s * s * s


def multiply_working_set(s: int) -> float:
    """Bytes touched by one block multiply (three s×s blocks)."""
    return 3.0 * s * s * BYTES_PER_ELEMENT


def block_multiply_add(
    c: "np.ndarray", a: "np.ndarray", b: "np.ndarray"
) -> "np.ndarray":
    """``C + A·B`` (one step of the paper's block algorithm)."""
    return c + a @ b
