"""Block matrix multiplication (§3.2).

Four implementations over one kernel:

* :func:`run_naive` — the triply nested sequential loop;
* :func:`run_blocked` — the cache-friendly blocked sequential version;
* :func:`run_pvm` — Figure 9's message-passing block algorithm;
* :func:`run_messengers` — Figures 10+11: the data-centric version with
  ``distribute_A`` / ``rotate_B`` Messengers coordinated by GVT.

All four produce numerically identical results (up to float
associativity); simulated times reproduce Figure 12's comparison.
"""

from .kernel import (
    BYTES_PER_ELEMENT,
    block_multiply_add,
    block_of,
    make_matrices,
    multiply_flops,
    multiply_working_set,
    set_block,
)
from .messengers_app import (
    DISTRIBUTE_A_SCRIPT,
    MessengersMatmulResult,
    ROTATE_B_SCRIPT,
    run_messengers,
)
from .pvm_app import PvmMatmulResult, run_pvm
from .sequential import SequentialMatmulResult, run_blocked, run_naive

__all__ = [
    "BYTES_PER_ELEMENT",
    "DISTRIBUTE_A_SCRIPT",
    "MessengersMatmulResult",
    "PvmMatmulResult",
    "ROTATE_B_SCRIPT",
    "SequentialMatmulResult",
    "block_multiply_add",
    "block_of",
    "make_matrices",
    "multiply_flops",
    "multiply_working_set",
    "run_blocked",
    "run_messengers",
    "run_naive",
    "run_pvm",
    "set_block",
]
