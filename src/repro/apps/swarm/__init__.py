"""Individual-based simulation on MESSENGERS (extension application).

The paper's §1 points at "individual-based systems, distributed
interactive simulations" as natural beneficiaries of the persistent
logical network, and §2.2 provides GVT as their synchronization
substrate.  This package exercises both beyond the paper's two
benchmarks: a grazing ecosystem on a toroidal logical network where
every creature is a Messenger — moving with directed hops, sharing
cell state through node variables, stepping in virtual-time lockstep,
starving, and spawning new Messengers at runtime.
"""

from .creatures import CREATURE_SCRIPT, SwarmResult, run_swarm
from .world import GRASS_MAX, GROW_PER_TICK, World

__all__ = [
    "CREATURE_SCRIPT",
    "GRASS_MAX",
    "GROW_PER_TICK",
    "SwarmResult",
    "World",
    "run_swarm",
]
