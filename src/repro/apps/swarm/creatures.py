"""Creatures: individual-based simulation agents as Messengers.

Each creature is one Messenger executing :data:`CREATURE_SCRIPT`.  Its
state — energy, identity, step counter — travels in messenger
variables; the world's state lives in node variables.  Creatures
synchronize through GVT exactly like the matmul blocks of §3.2: every
creature wakes at integer virtual ticks, grazes, pays metabolism, and
moves one cell in a deterministic pseudo-random direction.  A creature
whose energy reaches zero starves (returns); one that thrives past the
reproduction threshold spawns offspring at its cell (a native injects a
new Messenger — Messengers creating Messengers, §1).

Determinism: direction choices and offspring identity derive from a
seeded hash of (creature id, tick), so runs are exactly repeatable.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from ...des import Simulator
from ...messengers import MessengersSystem
from ...netsim import CostModel, DEFAULT_COSTS, build_lan
from .world import World

__all__ = ["CREATURE_SCRIPT", "SwarmResult", "run_swarm"]

CREATURE_SCRIPT = """
creature(id, energy, start, ticks) {
    for (k = start; k < ticks; k++) {
        M_sched_time_abs(k);
        energy = energy + graze(id) - metabolism();
        if (energy <= 0) {
            starve(id, k);
            return;
        }
        if (energy >= repro_threshold()) {
            energy = energy / 2;
            spawn_offspring(id, k, energy, ticks);
        }
        dir = choose_direction(id, k);
        if (dir == 0) { hop(ll = "east"; ldir = +); }
        else if (dir == 1) { hop(ll = "east"; ldir = -); }
        else if (dir == 2) { hop(ll = "south"; ldir = +); }
        else { hop(ll = "south"; ldir = -); }
    }
    survive(id, energy);
}
"""


@dataclass
class SwarmResult:
    """Outcome of one swarm run."""

    ticks: int
    initial_population: int
    born: int = 0
    starved: list = field(default_factory=list)  # (id, tick)
    survivors: dict = field(default_factory=dict)  # id -> final energy
    total_grass_left: float = 0.0
    visits: dict = field(default_factory=dict)
    seconds: float = 0.0  # simulated
    gvt_rounds: int = 0

    @property
    def final_population(self) -> int:
        return len(self.survivors)


def _direction(seed: int, creature_id, tick: int) -> int:
    """Deterministic direction in {0,1,2,3} from (seed, id, tick)."""
    key = f"{seed}:{creature_id}:{tick}".encode()
    return zlib.crc32(key) % 4


def run_swarm(
    rows: int = 6,
    cols: int = 6,
    n_hosts: int = 4,
    population: int = 8,
    ticks: int = 20,
    initial_energy: float = 5.0,
    bite: float = 3.0,
    metabolism: float = 2.0,
    repro_threshold: float = 14.0,
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> SwarmResult:
    """Run the grazing simulation; fully deterministic for a seed."""
    sim = Simulator()
    system = MessengersSystem(build_lan(sim, n_hosts, costs))
    world = World(system, rows, cols)
    result = SwarmResult(ticks=ticks, initial_population=population)
    natives = system.natives
    next_id = [population]

    @natives.register
    def graze(env, creature_id):
        eaten = World.graze(env.node, env.vt, bite)
        env.charge_seconds(20e-6)
        return eaten

    @natives.register(name="metabolism")
    def _metabolism(env):
        return metabolism

    @natives.register(name="repro_threshold")
    def _repro_threshold(env):
        return repro_threshold

    @natives.register
    def choose_direction(env, creature_id, tick):
        return _direction(seed, creature_id, int(tick))

    @natives.register
    def starve(env, creature_id, tick):
        result.starved.append((creature_id, int(tick)))
        return 0

    @natives.register
    def survive(env, creature_id, energy):
        result.survivors[creature_id] = energy
        return 0

    @natives.register
    def spawn_offspring(env, parent_id, tick, energy, total_ticks):
        child_id = next_id[0]
        next_id[0] += 1
        result.born += 1
        # The child joins the lockstep at the *next* tick, at the
        # parent's cell.
        system.inject(
            CREATURE_SCRIPT,
            args=(child_id, energy, int(tick) + 1, total_ticks),
            daemon=env.node.daemon,
            node=env.node.display_name,
            vt=env.vt,
        )
        return 0

    # Scatter the founding population deterministically.
    for creature_id in range(population):
        row = _direction(seed, creature_id, -1) + creature_id % rows
        col = _direction(seed, creature_id, -2) + creature_id % cols
        cell = world.cell(row % rows, col % cols)
        system.inject(
            CREATURE_SCRIPT,
            args=(creature_id, initial_energy, 0, ticks),
            daemon=cell.daemon,
            node=cell.display_name,
        )

    result.seconds = system.run_to_quiescence()
    result.total_grass_left = world.total_grass(float(ticks))
    result.visits = world.visit_histogram()
    result.gvt_rounds = system.vtime.rounds
    return result
