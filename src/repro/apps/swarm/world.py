"""The grazing world: a toroidal grid with regrowing grass.

The paper's introduction names "individual-based systems, distributed
interactive simulations" as natural users of a persistent logical
network (§1) and presents GVT as the coordination substrate (§2.2).
This extension application puts both to work: the world is a torus of
logical nodes whose *node variables* hold the grass state, and the
creatures of :mod:`repro.apps.swarm.creatures` are Messengers that
graze and move in virtual-time lockstep.

Grass is stored lazily: each cell records ``(level, last_vt)`` and is
brought up to date (regrowth ``GROW_PER_TICK`` per virtual tick, capped
at ``GRASS_MAX``) whenever a creature grazes — no per-tick sweep over
the world is needed.
"""

from __future__ import annotations


from ...messengers import MessengersSystem, build_torus, grid_node_name

__all__ = ["GRASS_MAX", "GROW_PER_TICK", "World"]

#: Maximum grass per cell.
GRASS_MAX = 10.0
#: Regrowth per virtual-time tick.
GROW_PER_TICK = 1.0


class World:
    """The torus of cells plus grass-state helpers."""

    def __init__(
        self,
        system: MessengersSystem,
        rows: int,
        cols: int,
        initial_grass: float = GRASS_MAX,
    ):
        self.system = system
        self.rows = rows
        self.cols = cols
        self.nodes = build_torus(system, rows, cols)
        for node in self.nodes.values():
            node.variables["grass"] = float(initial_grass)
            node.variables["grass_vt"] = 0.0
            node.variables["visits"] = 0

    def cell(self, row: int, col: int):
        """The logical node of cell (row, col)."""
        return self.nodes[grid_node_name(row % self.rows, col % self.cols)]

    # -- grass dynamics ------------------------------------------------------

    @staticmethod
    def current_grass(node, vt: float) -> float:
        """Grass level at virtual time ``vt`` (lazy regrowth)."""
        level = node.variables["grass"]
        elapsed = vt - node.variables["grass_vt"]
        return min(GRASS_MAX, level + elapsed * GROW_PER_TICK)

    @staticmethod
    def graze(node, vt: float, bite: float) -> float:
        """Consume up to ``bite`` grass at ``vt``; returns the amount."""
        available = World.current_grass(node, vt)
        eaten = min(bite, available)
        node.variables["grass"] = available - eaten
        node.variables["grass_vt"] = vt
        node.variables["visits"] += 1
        return eaten

    # -- observability -----------------------------------------------------------

    def total_grass(self, vt: float) -> float:
        """World grass total at virtual time ``vt``."""
        return sum(
            self.current_grass(node, vt) for node in self.nodes.values()
        )

    def visit_histogram(self) -> dict:
        """Cell name → number of grazing visits."""
        return {
            name: node.variables["visits"]
            for name, node in self.nodes.items()
        }

    def grass_map(self, vt: float) -> list:
        """Row-major grid of grass levels (for rendering)."""
        return [
            [
                self.current_grass(self.cell(r, c), vt)
                for c in range(self.cols)
            ]
            for r in range(self.rows)
        ]
