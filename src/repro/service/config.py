"""Frozen configuration for open-system service workloads."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ARRIVAL_KINDS", "ServiceConfig"]

#: Arrival-process shapes :mod:`repro.service.arrivals` can generate.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class ServiceConfig:
    """One open-loop service experiment, fully described.

    The traffic side: ``arrivals``/``rate_rps``/``duration_s`` shape
    the open-loop request stream; each request reads one of ``n_keys``
    logical data keys spread over the server hosts, costs
    ``request_flops`` of server CPU, and must answer within
    ``deadline_s`` of its arrival (absolute per-request deadline,
    propagated across every hop and RPC it causes).

    The graceful-degradation stack (all gated on ``degradation``):

    * admission control — at most ``max_in_flight`` admitted requests
      concurrently; excess arrivals get a typed rejection instead of a
      queue slot;
    * retry budgets — up to ``retry_budget`` retries per request, with
      per-attempt timeouts growing by ``retry_backoff`` plus
      deterministic jitter from a named RNG stream;
    * per-target circuit breakers — a window of ``breaker_window``
      results whose error rate at or above ``breaker_threshold`` opens
      the breaker for ``breaker_cooldown_s``, then ``breaker_probes``
      half-open probes decide between closing and re-opening;
    * load shedding — servers (and data-node natives) drop requests
      whose deadline can no longer be met instead of computing dead
      work.

    Calibration note: with the default SPARC-5 cost table a request is
    10 ms of server CPU, so a 4-host cluster (1 frontend + 3 servers)
    saturates around ~250 requests/second — the bench's "below" and
    "2x" offered loads are calibrated against that point.
    """

    arrivals: str = "poisson"
    rate_rps: float = 125.0
    duration_s: float = 0.6
    n_keys: int = 24
    request_flops: float = 200e3  # 10 ms at 20 MFLOPS
    payload_bytes: int = 256
    deadline_s: float = 0.05
    degradation: bool = True
    # -- admission control --------------------------------------------------
    max_in_flight: int = 16
    # -- retry budget -------------------------------------------------------
    retry_budget: int = 2
    retry_timeout_s: float = 0.015
    retry_backoff: float = 2.0
    retry_jitter: float = 0.25
    # -- circuit breakers ---------------------------------------------------
    breaker_window: int = 16
    breaker_threshold: float = 0.5
    breaker_cooldown_s: float = 0.06
    breaker_probes: int = 2
    # -- arrival shaping (bursty / diurnal) ---------------------------------
    burst_on_s: float = 0.06
    burst_off_s: float = 0.06
    burst_factor: float = 3.0
    diurnal_period_s: float = 0.3
    diurnal_depth: float = 0.8
    # -- latency accounting -------------------------------------------------
    #: Reservoir size for latency quantiles: 0 (default) keeps the
    #: plain fixed-bucket estimate; k > 0 maintains a deterministic
    #: k-sample uniform reservoir (Algorithm R on the workload's named
    #: RNG stream) and reads tail quantiles from exact order statistics.
    latency_reservoir: int = 0

    def __post_init__(self):
        if self.arrivals not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process {self.arrivals!r} "
                f"(choose from {', '.join(ARRIVAL_KINDS)})"
            )
        for name in (
            "rate_rps", "duration_s", "request_flops", "deadline_s",
            "retry_timeout_s", "breaker_cooldown_s", "burst_on_s",
            "burst_off_s", "diurnal_period_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.n_keys < 1:
            raise ValueError("need at least one key")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.retry_budget < 0:
            raise ValueError("retry budget cannot be negative")
        if self.retry_backoff < 1.0:
            raise ValueError("retry backoff must be >= 1")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry jitter must be in [0, 1]")
        if self.breaker_window < 1 or self.breaker_probes < 1:
            raise ValueError("breaker window and probes must be >= 1")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker threshold must be in (0, 1]")
        if self.burst_factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ValueError("diurnal depth must be in [0, 1)")
        if self.latency_reservoir < 0:
            raise ValueError("latency reservoir cannot be negative")

    def with_(self, **overrides) -> "ServiceConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)
