"""The graceful-degradation stack: admission, retries, breakers.

Overload handling follows one principle: convert pressure into *typed,
accounted* outcomes early, instead of letting queues grow until the
whole system serves only dead requests (metastable collapse).  Three
mechanisms implement it:

* :class:`AdmissionController` — a hard bound on admitted in-flight
  requests at ingress; excess arrivals are rejected in O(1);
* :func:`retry_schedule` — per-request retry timeouts with exponential
  backoff and deterministic jitter drawn from a named RNG stream, so a
  retry storm never synchronizes and two runs with the same seed retry
  at the exact same instants;
* :class:`CircuitBreaker` — the classic closed/open/half-open machine
  per downstream target, driven by (and publishing to) the obs
  registry's live error-rate and latency gauges: a window of failures
  opens it, fast-failing new requests for a cooldown, then a few
  half-open probes decide whether the target has recovered.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

__all__ = [
    "AdmissionController",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "LEGAL_TRANSITIONS",
    "OPEN",
    "retry_schedule",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: The only edges a sane breaker may take (checked by BreakerSanity).
LEGAL_TRANSITIONS = frozenset(
    [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
     (HALF_OPEN, OPEN)]
)

_STATE_VALUE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


def retry_schedule(
    budget: int,
    timeout_s: float,
    backoff: float,
    jitter: float,
    rng,
) -> Tuple[float, ...]:
    """Per-attempt timeouts for one request: ``budget + 1`` entries.

    Attempt ``i`` waits ``timeout_s * backoff**i * (1 + jitter * U)``
    with ``U`` drawn from ``rng`` (a named stream — conventionally
    ``"service.retry"``).  A pure function of ``(args, rng state)``:
    the same stream replays the same schedule bit-for-bit.
    """
    if budget < 0:
        raise ValueError("retry budget cannot be negative")
    if timeout_s <= 0:
        raise ValueError("retry timeout must be positive")
    return tuple(
        timeout_s * (backoff ** attempt) * (1.0 + jitter * rng.random())
        for attempt in range(budget + 1)
    )


class AdmissionController:
    """Bounded admission at ingress: overload becomes typed rejection.

    ``try_admit`` is the only gate; every admitted request must
    ``release`` exactly once when it reaches a terminal state, whatever
    that state is.
    """

    def __init__(self, max_in_flight: int):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0

    def try_admit(self) -> bool:
        if self.in_flight >= self.max_in_flight:
            self.rejected += 1
            return False
        self.in_flight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("admission release without a matching admit")
        self.in_flight -= 1

    def __repr__(self) -> str:
        return (
            f"<AdmissionController {self.in_flight}/{self.max_in_flight} "
            f"admitted={self.admitted} rejected={self.rejected}>"
        )


class CircuitBreaker:
    """Closed/open/half-open breaker for one downstream target.

    Closed: results feed a sliding window; once the window is full and
    its error rate reaches ``threshold``, the breaker opens.  Open:
    ``allow`` fast-fails until ``cooldown_s`` has elapsed, then the
    breaker goes half-open.  Half-open: at most ``probes`` concurrent
    probe requests; ``probes`` consecutive successes close it, any
    failure re-opens it.

    When a :class:`~repro.obs.MetricsRegistry` is attached the breaker
    publishes ``service.breaker.<target>.state`` / ``.error_rate`` /
    ``.latency_s`` gauges and the open/fast-fail decisions read the
    live error-rate gauge — the registry is in the control loop, not
    just an observer.  Without metrics the internal window value is
    used, which is numerically identical, so enabling observability
    never changes scheduling.
    """

    def __init__(
        self,
        sim,
        target: str,
        window: int = 16,
        threshold: float = 0.5,
        cooldown_s: float = 0.06,
        probes: int = 2,
        metrics=None,
    ):
        self.sim = sim
        self.target = target
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.probes = probes
        self.state = CLOSED
        self.opened_at: Optional[float] = None
        self.fast_fails = 0
        #: (time, state) history, for the breaker-sanity invariant.
        self.transitions: list[tuple[float, str]] = [(0.0, CLOSED)]
        self._window: deque = deque(maxlen=window)
        self._probes_out = 0
        self._probe_ok = 0
        self._state_gauge = None
        self._error_gauge = None
        self._latency_gauge = None
        if metrics is not None and metrics.enabled:
            prefix = f"service.breaker.{target}"
            self._state_gauge = metrics.gauge(f"{prefix}.state")
            self._error_gauge = metrics.gauge(f"{prefix}.error_rate")
            self._latency_gauge = metrics.gauge(f"{prefix}.latency_s")

    # -- decisions -----------------------------------------------------------

    def allow(self) -> bool:
        """May one more request be sent at this target right now?"""
        now = self.sim.now
        if self.state == OPEN:
            if now - self.opened_at >= self.cooldown_s:
                self._transition(HALF_OPEN, now)
            else:
                self.fast_fails += 1
                return False
        if self.state == HALF_OPEN:
            if self._probes_out >= self.probes:
                self.fast_fails += 1
                return False
            self._probes_out += 1
            return True
        return True

    def record(self, ok: bool, latency_s: Optional[float] = None) -> None:
        """Feed one request outcome for this target back in."""
        now = self.sim.now
        if latency_s is not None and self._latency_gauge is not None:
            self._latency_gauge.set(latency_s)
        if self.state == HALF_OPEN:
            if self._probes_out > 0:
                self._probes_out -= 1
            if ok:
                self._probe_ok += 1
                if self._probe_ok >= self.probes:
                    self._transition(CLOSED, now)
            else:
                self._transition(OPEN, now)
            return
        if self.state == OPEN:
            return  # stale result from before the window was wiped
        self._window.append(0 if ok else 1)
        rate = sum(self._window) / len(self._window)
        if self._error_gauge is not None:
            self._error_gauge.set(rate)
            rate = self._error_gauge.value  # decide from the live gauge
        if len(self._window) == self._window.maxlen and \
                rate >= self.threshold:
            self._transition(OPEN, now)

    # -- internals -----------------------------------------------------------

    def _transition(self, state: str, now: float) -> None:
        self.transitions.append((now, state))
        self.state = state
        if state == OPEN:
            self.opened_at = now
            self._window.clear()
        self._probes_out = 0
        self._probe_ok = 0
        if self._state_gauge is not None:
            self._state_gauge.set(_STATE_VALUE[state])

    @property
    def times_opened(self) -> int:
        return sum(1 for _t, s in self.transitions if s == OPEN)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.target} {self.state} "
            f"opened={self.times_opened} fast_fails={self.fast_fails}>"
        )
