"""Open-system service workloads: Messengers vs PVM-style RPC.

The paper's question — carry the computation to the data, or send
messages to stationary tasks? — restaged as a service mesh under load.
An open-loop traffic generator (arrivals keep coming whether or not
the system keeps up — the regime where overload collapse happens)
drives simulated user requests at a cluster whose first host is the
frontend/ingress and whose remaining hosts serve ``n_keys`` logical
data keys:

* **MESSENGERS** — each admitted request injects a Messenger at the
  frontend daemon that hops to its key's node (*wherever it currently
  lives* — crash re-homing and churn move keys under the traffic),
  runs the service computation there, and hops back to the gateway
  node to deliver the response.  The per-request deadline travels as a
  messenger variable and is honored at every stage.
* **PVM** — each admitted request spawns a client task on the frontend
  that sends an RPC to the long-lived server task on the key's
  statically-routed host and waits for the tagged reply, with
  per-attempt timeouts, retry budget, and deadline carried in the
  request (servers shed work whose deadline is no longer feasible;
  the reliable transport stops retransmitting past-deadline packets).

Both paths run the same graceful-degradation stack from
:mod:`repro.service.degradation` and account every request into a
:class:`~repro.service.invariants.RequestBook`, so "no request lost
silently" and "breaker sanity" are checkable invariants — and the
schedule searcher can hunt for fault schedules where shedding breaks
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..des.rng import RngRegistry
from ..obs.registry import Histogram
from .arrivals import iter_arrival_times
from .config import ServiceConfig
from .degradation import AdmissionController, CircuitBreaker, retry_schedule
from .invariants import BreakerSanity, NoRequestLost, RequestBook

__all__ = ["Request", "SERVICE_SCRIPT", "ServiceWorkload"]

#: Unique name of the frontend's response-collection node (MESSENGERS).
GATEWAY_NODE = "svc_gw"

#: Tag carried by every RPC request; replies are tagged with the
#: request id itself (the per-request correlation PVM programs build by
#: convention).
REQ_TAG = 1_000_000

#: The per-request Messenger (one behavior, the paper's idiom): hop to
#: the data, decide/compute there, hop home with the answer.  A request
#: shed at the data node (``svc_work`` returns 0) terminates in place —
#: no wasted return hop.
SERVICE_SCRIPT = """
service(req, key, home, dl, flops) {
    hop(ln = key; ll = virtual);
    if (svc_work(req, dl, flops) == 1) {
        hop(ln = home; ll = virtual);
        svc_done(req, dl);
    }
}
"""

#: Latency buckets: 1 ms resolution through the deadline region, then
#: coarse tails — fine enough for honest p50/p99/p999 under a 50 ms
#: deadline.
LATENCY_BUCKETS = tuple(i / 1000 for i in range(1, 61)) + (
    0.08, 0.1, 0.15, 0.2, 0.3, 0.5, 1.0,
)


@dataclass(frozen=True)
class Request:
    """One simulated user request, fully determined at generation time."""

    rid: int
    t_arrive: float
    key: str
    deadline: float  # absolute virtual time
    retry_timeouts: Tuple[float, ...]


class ServiceWorkload:
    """Drives one service experiment on a :class:`~repro.facade.Cluster`.

    Build via ``cluster.service`` (configured by
    ``ClusterConfig(service=ServiceConfig(...))``) and run with
    :meth:`run` — once per cluster; the workload owns per-run state.
    """

    def __init__(self, cluster, config: Optional[ServiceConfig] = None):
        self.cluster = cluster
        self.config = config if config is not None else ServiceConfig()
        self.book = RequestBook()
        self.admission = AdmissionController(self.config.max_in_flight)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.rng = RngRegistry(cluster.config.seed)
        reservoir = self.config.latency_reservoir
        self.latency_hist = Histogram(
            "service.latency_s",
            LATENCY_BUCKETS,
            reservoir=reservoir,
            rng=(
                self.rng.stream("service.latency_reservoir")
                if reservoir
                else None
            ),
        )
        self.counts: Dict[str, int] = {}
        self._inflight: Dict[int, tuple] = {}
        self._mode: Optional[str] = None
        self._churn: Optional[tuple] = None
        # PVM routing state (filled by _setup_pvm).
        self._frontend: str = cluster.host_names[0]
        self._server_hosts: list[str] = []
        self._server_tids: Dict[str, int] = {}
        self._router: Dict[str, str] = {}
        if cluster.resilience is not None:
            cluster.resilience.add_invariant(NoRequestLost(self.book))
            cluster.resilience.add_invariant(BreakerSanity(self.breakers))

    # -- shared plumbing -----------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def iter_requests(self):
        """The request stream, generated on demand from named RNG streams.

        Three independent streams — arrival instants, key choice, retry
        jitter — so perturbing one (e.g. sweeping the arrival shape)
        never re-randomizes the others.  Each stream is consumed in the
        same per-stream order whether requests are drawn lazily (this
        generator, O(1) arrival state — the scale-layer form the
        drivers use) or all at once (:meth:`generate_requests`), so the
        two forms produce identical traces.
        """
        cfg = self.config
        times = iter_arrival_times(cfg, self.rng.stream("service.arrivals"))
        key_rng = self.rng.stream("service.keys")
        retry_rng = self.rng.stream("service.retry")
        for rid, t in enumerate(times, start=1):
            key = f"key{key_rng.randrange(cfg.n_keys)}"
            if cfg.degradation:
                timeouts = retry_schedule(
                    cfg.retry_budget,
                    cfg.retry_timeout_s,
                    cfg.retry_backoff,
                    cfg.retry_jitter,
                    retry_rng,
                )
            else:
                # No retries, no early timeout: one attempt that waits
                # out the whole deadline.
                timeouts = (cfg.deadline_s,)
            yield Request(rid, t, key, t + cfg.deadline_s, timeouts)

    def generate_requests(self) -> list[Request]:
        """Materialised :meth:`iter_requests` (tests and offline tools)."""
        return list(self.iter_requests())

    def breaker_for(self, target: str) -> CircuitBreaker:
        breaker = self.breakers.get(target)
        if breaker is None:
            cfg = self.config
            breaker = CircuitBreaker(
                self.cluster.sim,
                target,
                window=cfg.breaker_window,
                threshold=cfg.breaker_threshold,
                cooldown_s=cfg.breaker_cooldown_s,
                probes=cfg.breaker_probes,
                metrics=self.cluster.metrics,
            )
            self.breakers[target] = breaker
        return breaker

    def _admit(self, request: Request, target: Optional[str]) -> bool:
        """Ingress gate: admission control, then the target's breaker.

        Returns True when the request may proceed; otherwise it has
        already been resolved with a typed rejection.
        """
        now = self.cluster.sim.now
        if not self.config.degradation:
            self._inflight[request.rid] = (False, target, now)
            return True
        if not self.admission.try_admit():
            self.book.resolve(request.rid, "rejected_admission", now)
            return False
        if target is not None:
            breaker = self.breaker_for(target)
            if not breaker.allow():
                self.admission.release()
                self.book.resolve(request.rid, "rejected_breaker", now)
                return False
        self._inflight[request.rid] = (True, target, now)
        return True

    def _finish(self, rid: int, outcome: str) -> None:
        """Record a terminal state; idempotent under crash replay."""
        now = self.cluster.sim.now
        entry = self._inflight.pop(rid, None)
        first = self.book.resolve(rid, outcome, now)
        if entry is None:
            return  # replayed terminal — outcome bookkeeping only
        admitted, target, t_start = entry
        latency = now - t_start
        if admitted:
            self.admission.release()
        if self.config.degradation and target is not None:
            ok = outcome == "completed"
            self.breaker_for(target).record(
                ok, latency if ok else None
            )
        if first and outcome == "completed":
            self.latency_hist.observe(latency)
            metrics = self.cluster.metrics
            if metrics is not None:
                metrics.observe("service.latency_s", latency)

    def schedule_churn(
        self,
        join_at_s: float,
        leave_at_s: float,
        leave: str = "host1",
    ) -> None:
        """Arrange mid-run churn: a host joins, then ``leave`` drains.

        MESSENGERS: the leaver's key nodes re-home live (requests keep
        finding them by name).  PVM: the leaver's server is killed and
        its keys are re-routed by the workload's static router — the
        operator-visible remap message passing needs where Messengers
        just follow the node.
        """
        if leave_at_s <= join_at_s:
            raise ValueError("leave must be scheduled after join")
        self._churn = (join_at_s, leave_at_s, leave)

    # -- MESSENGERS ----------------------------------------------------------

    def run_messengers(self) -> dict:
        """Run the experiment with per-request migrating Messengers."""
        if self._mode is not None:
            raise RuntimeError("a ServiceWorkload runs exactly once")
        self._mode = "messengers"
        cluster = self.cluster
        system = cluster.messengers
        cfg = self.config
        servers = cluster.host_names[1:] or cluster.host_names[:1]
        cluster.add_node(GATEWAY_NODE, self._frontend)
        for index in range(cfg.n_keys):
            cluster.add_node(
                f"key{index}", servers[index % len(servers)]
            )
        self._register_natives(system)
        if self._churn is not None:
            join_at, leave_at, leaver = self._churn
            cluster.schedule(join_at, lambda c: c.join_host())
            cluster.schedule(leave_at, lambda c: c.leave_host(leaver))
        program = system.compile(SERVICE_SCRIPT)
        cluster.sim.process(
            self._drive_messengers(self.iter_requests(), program)
        )
        cluster.run_to_quiescence()
        self._final_check()
        return self.stats()

    def _register_natives(self, system) -> None:
        workload = self
        cfg = self.config
        costs = self.cluster.costs
        service_estimate = costs.compute_seconds(
            cfg.request_flops, cpu_scale=self.cluster.config.cpu_scale
        )

        @system.natives.register
        def svc_work(env, req, dl, flops):
            # Deadline propagation: the deadline hopped here with the
            # messenger; shed dead-on-arrival work at the data node.
            if cfg.degradation and env.now + service_estimate > dl:
                workload.count("node_shed")
                workload._finish(int(req), "expired")
                return 0
            env.charge_flops(flops)
            return 1

        @system.natives.register
        def svc_done(env, req, dl):
            outcome = "completed" if env.now <= dl else "expired"
            workload._finish(int(req), outcome)
            return 0

    def _drive_messengers(self, requests, program):
        cluster = self.cluster
        sim = cluster.sim
        system = cluster.messengers
        cfg = self.config
        for request in requests:
            delay = request.t_arrive - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self.book.create(request.rid, sim.now)
            nodes = sorted(
                system.logical.find_named(request.key),
                key=lambda n: n.uid,
            )
            target = nodes[0].daemon if nodes else None
            if not self._admit(request, target):
                continue
            system.inject(
                program,
                args=(
                    request.rid,
                    request.key,
                    GATEWAY_NODE,
                    request.deadline,
                    cfg.request_flops,
                ),
                daemon=self._frontend,
            )
            self.count("injected")

    # -- PVM -----------------------------------------------------------------

    def run_pvm(self) -> dict:
        """Run the experiment with stationary tasks + RPC (the baseline)."""
        if self._mode is not None:
            raise RuntimeError("a ServiceWorkload runs exactly once")
        self._mode = "pvm"
        cluster = self.cluster
        system = cluster.mp
        cfg = self.config
        self._server_hosts = list(cluster.host_names[1:]) or \
            list(cluster.host_names[:1])
        self._router = {
            f"key{i}": self._server_hosts[i % len(self._server_hosts)]
            for i in range(cfg.n_keys)
        }
        for host in self._server_hosts:
            self._start_server(host)
        cluster.network.add_restart_listener(self._on_host_restart)
        if self._churn is not None:
            join_at, leave_at, leaver = self._churn
            cluster.schedule(join_at, self._pvm_join)
            cluster.schedule(
                leave_at, lambda c: self._pvm_drain(leaver)
            )
        cluster.sim.process(self._drive_pvm(self.iter_requests()))
        cluster.run()
        self._final_check()
        return self.stats()

    def _start_server(self, host: str) -> None:
        tid = self.cluster.mp.spawn(self._server_behavior, host=host)
        self._server_tids[host] = tid

    def _server_behavior(self, ctx):
        cfg = self.config
        costs = self.cluster.costs
        service_estimate = costs.compute_seconds(
            cfg.request_flops, cpu_scale=self.cluster.config.cpu_scale
        )
        while True:
            msg = yield from ctx.recv(tag=REQ_TAG)
            rid, client_tid, deadline = msg.buffer.unpack_object()
            # Deadline propagation across the RPC: the server honors
            # the client's deadline, shedding infeasible work instead
            # of burning CPU on a reply nobody can use.
            if cfg.degradation and ctx.now + service_estimate > deadline:
                self.count("server_shed")
                continue
            yield from ctx.compute(cfg.request_flops)
            yield from ctx.send(
                client_tid, rid, tag=rid, deadline_s=deadline
            )

    def _client_behavior(self, ctx, request: Request):
        from ..mp.buffers import PackBuffer

        cfg = self.config
        for timeout in request.retry_timeouts:
            remaining = request.deadline - ctx.now
            if remaining <= 0:
                break
            host = self._router.get(request.key)
            tid = self._server_tids.get(host) if host is not None else None
            if tid is None:
                break  # no live server for this key right now
            buf = PackBuffer()
            buf.pack_object((request.rid, ctx.tid, request.deadline))
            buf.pack_bytes(bytes(cfg.payload_bytes))
            yield from ctx.send(
                tid, buf, tag=REQ_TAG, deadline_s=request.deadline
            )
            self.count("rpcs_sent")
            msg = yield from ctx.recv_timeout(
                min(timeout, remaining), tag=request.rid
            )
            if msg is not None:
                self._finish(
                    request.rid,
                    "completed"
                    if ctx.now <= request.deadline
                    else "expired",
                )
                return
            self.count("rpc_timeouts")
        self._finish(
            request.rid,
            "expired" if ctx.now >= request.deadline else "failed",
        )

    def _drive_pvm(self, requests):
        cluster = self.cluster
        sim = cluster.sim
        system = cluster.mp
        client_processes = []
        for request in requests:
            delay = request.t_arrive - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self.book.create(request.rid, sim.now)
            target = self._router.get(request.key)
            if not self._admit(request, target):
                continue
            tid = system.spawn(
                self._client_behavior, request, host=self._frontend
            )
            task = system.task(tid)
            if task.process is not None:
                client_processes.append(task.process)
        if client_processes:
            yield sim.all_of(client_processes)
        # The run is over; long-lived servers must not strand the DES
        # blocked on recv (that would trip the deadlock detector).
        for host in sorted(self._server_tids):
            tid = self._server_tids[host]
            if tid is not None:
                system.kill(tid)

    def _on_host_restart(self, host) -> None:
        if self._mode != "pvm":
            return
        name = host.name
        if name not in self._server_hosts:
            return
        tid = self._server_tids.get(name)
        if tid is not None and not self.cluster.mp.task(tid).exited:
            return
        self._start_server(name)
        self.count("servers_respawned")

    def _pvm_join(self, cluster) -> None:
        from ..netsim import Host

        index = len(cluster.network)
        taken = set(cluster.network.host_names)
        prefix = cluster.config.name_prefix
        while f"{prefix}{index}" in taken:
            index += 1
        name = f"{prefix}{index}"
        host = Host(
            cluster.sim, name, cluster.costs,
            cpu_scale=cluster.config.cpu_scale,
        )
        cluster.network.add_host(host)
        cluster.mp.attach_host(name)
        self._server_hosts.append(name)
        self._start_server(name)
        self.count("servers_joined")

    def _pvm_drain(self, host_name: str) -> None:
        tid = self._server_tids.pop(host_name, None)
        if host_name in self._server_hosts:
            self._server_hosts.remove(host_name)
        live = self._server_hosts
        if live:
            for position, key in enumerate(sorted(self._router)):
                if self._router[key] == host_name:
                    self._router[key] = live[position % len(live)]
        if tid is not None:
            self.cluster.mp.kill(tid)
        self.count("servers_drained")

    # -- results -------------------------------------------------------------

    def run(self, system: str = "messengers") -> dict:
        """Dispatch: ``"messengers"`` or ``"pvm"``."""
        if system == "messengers":
            return self.run_messengers()
        if system in ("pvm", "mp"):
            return self.run_pvm()
        raise ValueError(f"unknown system {system!r}")

    def _final_check(self) -> None:
        if self.cluster.resilience is not None:
            self.cluster.resilience.check_final()

    def stats(self) -> dict:
        """JSON-friendly results of the run (stable key order)."""
        cfg = self.config
        outcome_counts = self.book.outcome_counts()
        goodput = outcome_counts["completed"] / cfg.duration_s
        offered = len(self.book.created) / cfg.duration_s
        hist = self.latency_hist
        metrics = self.cluster.metrics
        if metrics is not None:
            metrics.gauge("service.offered_rps").set(round(offered, 2))
            metrics.gauge("service.goodput_rps").set(round(goodput, 2))
        return {
            "system": self._mode,
            "arrivals": len(self.book.created),
            "offered_rps": round(offered, 2),
            "goodput_rps": round(goodput, 2),
            "outcomes": outcome_counts,
            "open_requests": len(self.book.open_requests),
            "duplicate_resolutions": self.book.duplicate_resolutions,
            "latency_ms": {
                "p50": round(hist.quantile(0.5) * 1e3, 3),
                "p99": round(hist.quantile(0.99) * 1e3, 3),
                "p999": round(hist.quantile(0.999) * 1e3, 3),
            },
            "admission": {
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
            },
            "breakers": {
                target: {
                    "state": breaker.state,
                    "opened": breaker.times_opened,
                    "fast_fails": breaker.fast_fails,
                }
                for target, breaker in sorted(self.breakers.items())
            },
            "counts": dict(sorted(self.counts.items())),
        }
