"""Open-loop arrival processes on named RNG streams.

All three generators are pure functions of ``(config, rng)``: the same
stream state always produces the same arrival-time list, which is what
makes a whole service run replayable from one root seed.  The
non-homogeneous processes (bursty, diurnal) use Lewis thinning — a
homogeneous candidate stream at the peak rate, with each candidate
accepted with probability ``rate(t) / peak`` — so their *mean* offered
load equals ``rate_rps`` exactly, and the shape knobs only move traffic
around in time.
"""

from __future__ import annotations

import math
from typing import Callable, List

from .config import ServiceConfig

__all__ = ["arrival_times"]


def _homogeneous(rate: float, duration: float, rng) -> List[float]:
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return times
        times.append(t)


def _thinned(
    peak: float, rate_at: Callable[[float], float], duration: float, rng
) -> List[float]:
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= duration:
            return times
        if rng.random() < rate_at(t) / peak:
            times.append(t)
    return times


def arrival_times(config: ServiceConfig, rng) -> List[float]:
    """Arrival instants in ``[0, duration_s)``, sorted, from ``rng``.

    ``rng`` is one named :class:`~repro.des.rng.RngRegistry` stream
    (conventionally ``"service.arrivals"``).
    """
    rate = config.rate_rps
    duration = config.duration_s
    if config.arrivals == "poisson":
        return _homogeneous(rate, duration, rng)
    if config.arrivals == "bursty":
        on = config.burst_on_s
        off = config.burst_off_s
        period = on + off
        # Mean-preserving on/off: rate_on = factor * rate_off, with the
        # time-average over one period equal to rate_rps.
        rate_off = rate * period / (config.burst_factor * on + off)
        rate_on = config.burst_factor * rate_off

        def burst_rate(t: float) -> float:
            return rate_on if (t % period) < on else rate_off

        return _thinned(rate_on, burst_rate, duration, rng)
    # diurnal: sinusoidal modulation, mean-preserving by construction.
    depth = config.diurnal_depth
    period = config.diurnal_period_s
    peak = rate * (1.0 + depth)

    def diurnal_rate(t: float) -> float:
        return rate * (1.0 + depth * math.sin(2.0 * math.pi * t / period))

    return _thinned(peak, diurnal_rate, duration, rng)
