"""Open-loop arrival processes on named RNG streams.

All three processes are pure functions of ``(config, rng)``: the same
stream state always produces the same arrival-time sequence, which is
what makes a whole service run replayable from one root seed.  The
non-homogeneous processes (bursty, diurnal) use Lewis thinning — a
homogeneous candidate stream at the peak rate, with each candidate
accepted with probability ``rate(t) / peak`` — so their *mean* offered
load equals ``rate_rps`` exactly, and the shape knobs only move traffic
around in time.

:func:`iter_arrival_times` is the streaming form — arrivals are drawn
on demand, one at a time, so an open-loop source holds O(1) memory no
matter how long the run (the scale-layer contract).  It consumes
``rng`` in exactly the order the old precomputed-list form did, so
traces are byte-identical; :func:`arrival_times` remains as the
materialised convenience wrapper.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List

from .config import ServiceConfig

__all__ = ["arrival_times", "iter_arrival_times"]


def _homogeneous(rate: float, duration: float, rng) -> Iterator[float]:
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return
        yield t


def _thinned(
    peak: float, rate_at: Callable[[float], float], duration: float, rng
) -> Iterator[float]:
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= duration:
            return
        if rng.random() < rate_at(t) / peak:
            yield t


def iter_arrival_times(config: ServiceConfig, rng) -> Iterator[float]:
    """Arrival instants in ``[0, duration_s)``, ascending, on demand.

    ``rng`` is one named :class:`~repro.des.rng.RngRegistry` stream
    (conventionally ``"service.arrivals"``).  Each ``next()`` draws
    just enough randomness for one more arrival, in the same stream
    order as the precomputed form — an open-loop driver that consumes
    this lazily keeps O(1) arrival state.
    """
    rate = config.rate_rps
    duration = config.duration_s
    if config.arrivals == "poisson":
        return _homogeneous(rate, duration, rng)
    if config.arrivals == "bursty":
        on = config.burst_on_s
        off = config.burst_off_s
        period = on + off
        # Mean-preserving on/off: rate_on = factor * rate_off, with the
        # time-average over one period equal to rate_rps.
        rate_off = rate * period / (config.burst_factor * on + off)
        rate_on = config.burst_factor * rate_off

        def burst_rate(t: float) -> float:
            return rate_on if (t % period) < on else rate_off

        return _thinned(rate_on, burst_rate, duration, rng)
    # diurnal: sinusoidal modulation, mean-preserving by construction.
    depth = config.diurnal_depth
    period = config.diurnal_period_s
    peak = rate * (1.0 + depth)

    def diurnal_rate(t: float) -> float:
        return rate * (1.0 + depth * math.sin(2.0 * math.pi * t / period))

    return _thinned(peak, diurnal_rate, duration, rng)


def arrival_times(config: ServiceConfig, rng) -> List[float]:
    """Materialised :func:`iter_arrival_times` (sorted by construction)."""
    return list(iter_arrival_times(config, rng))
