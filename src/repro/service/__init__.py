"""Open-system service workloads with graceful degradation.

``repro.service`` restages the paper's Messengers-vs-messages question
as a service mesh under open-loop load: deadline-carrying requests
arrive whether or not the system keeps up, and the interesting regime
is overload — where a system either degrades gracefully (typed
rejections, stable goodput plateau) or collapses metastably (every
queue full of already-dead work).

Entry point: configure a cluster with
``ClusterConfig(service=ServiceConfig(...))`` and run
``cluster.service.run("messengers")`` or ``.run("pvm")``.
"""

from .arrivals import arrival_times, iter_arrival_times
from .config import ARRIVAL_KINDS, ServiceConfig
from .degradation import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    AdmissionController,
    CircuitBreaker,
    retry_schedule,
)
from .invariants import (
    TERMINAL_OUTCOMES,
    BreakerSanity,
    NoRequestLost,
    RequestBook,
)
from .workload import SERVICE_SCRIPT, Request, ServiceWorkload

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionController",
    "BreakerSanity",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "LEGAL_TRANSITIONS",
    "NoRequestLost",
    "OPEN",
    "Request",
    "RequestBook",
    "SERVICE_SCRIPT",
    "ServiceConfig",
    "ServiceWorkload",
    "TERMINAL_OUTCOMES",
    "arrival_times",
    "iter_arrival_times",
    "retry_schedule",
]
