"""Degradation invariants: what shedding is never allowed to break.

Load shedding deliberately *fails* requests, so "no request failed" is
not a property worth checking.  What must hold instead:

* :class:`NoRequestLost` — every request that entered the system
  reaches exactly one typed terminal state (completed, expired,
  rejected, failed).  Shedding may refuse work; it may never lose work
  *silently*.  Double resolution (e.g. a crash-replayed native
  reporting twice) is absorbed by first-writer-wins bookkeeping in the
  :class:`RequestBook` and surfaces here if an unknown request shows
  up.
* :class:`BreakerSanity` — every circuit breaker only ever walks legal
  edges of the closed/open/half-open machine, in non-decreasing time,
  with probe accounting inside bounds.

Both plug into :meth:`repro.resilience.ResilienceSuite.add_invariant`,
which also makes them reachable by the schedule searcher.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..resilience.invariants import Invariant
from .degradation import CLOSED, CircuitBreaker, LEGAL_TRANSITIONS

__all__ = [
    "BreakerSanity",
    "NoRequestLost",
    "RequestBook",
    "TERMINAL_OUTCOMES",
]

#: The only terminal states a request may reach.
TERMINAL_OUTCOMES = (
    "completed",            # answered within its deadline
    "expired",              # deadline passed before an answer
    "rejected_admission",   # shed at ingress (admission control)
    "rejected_breaker",     # fast-failed by an open circuit breaker
    "failed",               # retry budget exhausted before the deadline
)

_TERMINAL_SET = frozenset(TERMINAL_OUTCOMES)


class RequestBook:
    """Per-request terminal-state ledger (first writer wins).

    ``create`` records a request entering the system; ``resolve``
    records its terminal state.  A second resolution of the same
    request is refused and counted — crash replay may legitimately
    re-run the native that reports an outcome, and the book absorbs
    the duplicate rather than corrupting the first verdict.
    """

    def __init__(self):
        self.created: Dict[int, float] = {}
        self.outcomes: Dict[int, tuple] = {}
        self.duplicate_resolutions = 0
        #: Resolutions for requests never created (always a bug).
        self.orphans: list[int] = []

    def create(self, rid: int, t: float) -> None:
        self.created[rid] = t

    def resolve(self, rid: int, outcome: str, t: float) -> bool:
        """Record ``rid``'s terminal state; False on a duplicate."""
        if outcome not in _TERMINAL_SET:
            raise ValueError(
                f"unknown outcome {outcome!r} "
                f"(choose from {', '.join(TERMINAL_OUTCOMES)})"
            )
        if rid not in self.created:
            self.orphans.append(rid)
        if rid in self.outcomes:
            self.duplicate_resolutions += 1
            return False
        self.outcomes[rid] = (outcome, t)
        return True

    @property
    def open_requests(self) -> list[int]:
        """Requests created but not yet in a terminal state."""
        return [rid for rid in self.created if rid not in self.outcomes]

    def outcome_counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(TERMINAL_OUTCOMES, 0)
        for outcome, _t in self.outcomes.values():
            counts[outcome] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<RequestBook created={len(self.created)} "
            f"resolved={len(self.outcomes)} "
            f"open={len(self.open_requests)}>"
        )


class NoRequestLost(Invariant):
    """Every request reaches exactly one typed terminal state."""

    name = "no-request-lost"

    def __init__(self, book: RequestBook):
        self.book = book

    def check(self, now: float) -> Optional[str]:
        if self.book.orphans:
            return (
                f"outcome recorded for requests never created: "
                f"{self.book.orphans[:5]}"
            )
        return None

    def check_final(self, now: float) -> Optional[str]:
        error = self.check(now)
        if error is not None:
            return error
        missing = self.book.open_requests
        if missing:
            return (
                f"{len(missing)} request(s) silently lost — no terminal "
                f"state (e.g. ids {sorted(missing)[:5]})"
            )
        return None


class BreakerSanity(Invariant):
    """Breaker state machines only walk legal edges, forward in time."""

    name = "breaker-sanity"

    def __init__(self, breakers: Dict[str, CircuitBreaker]):
        #: Live view — the workload adds breakers as targets appear.
        self.breakers = breakers

    def check(self, now: float) -> Optional[str]:
        for target, breaker in sorted(self.breakers.items()):
            history = breaker.transitions
            if not history or history[0][1] != CLOSED:
                return f"breaker {target}: history does not start closed"
            last_t, last_s = history[0]
            for t, state in history[1:]:
                if t < last_t - 1e-12:
                    return (
                        f"breaker {target}: transition time moved "
                        f"backwards ({last_t} -> {t})"
                    )
                if (last_s, state) not in LEGAL_TRANSITIONS:
                    return (
                        f"breaker {target}: illegal transition "
                        f"{last_s} -> {state} at t={t:.6f}"
                    )
                last_t, last_s = t, state
            if breaker.state != last_s:
                return (
                    f"breaker {target}: live state {breaker.state} "
                    f"disagrees with history ({last_s})"
                )
            if not 0 <= breaker._probes_out <= breaker.probes:
                return (
                    f"breaker {target}: probe accounting out of bounds "
                    f"({breaker._probes_out}/{breaker.probes})"
                )
        return None
