"""One-call construction of the paper's platform.

Everything in this repository can be assembled by hand — a
:class:`~repro.des.Simulator`, a LAN from
:func:`~repro.netsim.build_lan`, then a
:class:`~repro.messengers.MessengersSystem` or
:class:`~repro.mp.MessagePassingSystem` on top — and the lower layers
remain the canonical API for benchmarks that need full control.  But
the common case is always the same four lines, so this module provides
them as one::

    import repro

    c = repro.cluster(4)                 # 4 workstations, one Ethernet
    c.inject('hello() { create(ALL); M_log("hi from", $address); }')
    c.run_to_quiescence()

A :class:`Cluster` owns the simulator and the physical network and
builds the software systems lazily: ``c.messengers`` the first time a
Messenger-side call is made, ``c.mp`` the first time a task is
spawned, ``c.mail`` the first time mailboxes are touched.  All share
the same wire, so mixed experiments work too.

Configuration is *typed*: every subsystem knob lives on one composable
:class:`ClusterConfig` (with :class:`~repro.mailbox.MailboxConfig`
nested for the mailbox layer)::

    cfg = repro.ClusterConfig(
        n_hosts=8,
        metrics=True,
        faults=plan,
        mailbox=repro.MailboxConfig(poll_interval_s=0.01),
    )
    c = repro.cluster(config=cfg)

The pre-1.3 keyword pile (``repro.cluster(4, metrics=True, ...)``)
still works but is deprecated: the kwargs are folded into a
``ClusterConfig`` and a :class:`DeprecationWarning` is emitted.

:class:`Experiment` is the fluent front end for measured runs.  The
body is an ordinary function of the cluster — use real statements, not
an ``and``-chain (``c.inject(s) and c.run_to_quiescence()`` would
short-circuit whenever ``inject`` returned a falsy value)::

    def body(c):
        c.inject(SCRIPT)
        return c.run_to_quiescence()

    result = repro.Experiment().hosts(8).metrics().run(body)
    print(result.report())
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Union

from .des import MCL_BACKENDS, SCHEDULER_KINDS, Simulator
from .mailbox import MailboxConfig
from .netsim import CostModel, DEFAULT_COSTS, Network, build_lan
from .obs import MetricsRegistry, cost_breakdown, format_breakdown

__all__ = [
    "Cluster",
    "ClusterConfig",
    "Experiment",
    "ExperimentResult",
    "cluster",
]

#: Daemon-graph shapes :class:`Cluster` knows how to build.
TOPOLOGIES = ("ethernet", "complete", "ring")

#: Keyword arguments the pre-ClusterConfig facade accepted directly.
_LEGACY_KWARGS = (
    "topology", "costs", "cpu_scale", "metrics", "faults", "seed",
    "resilience", "name_prefix",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Typed, composable configuration for a :class:`Cluster`.

    One object describes the whole platform; subsystems each get a
    field instead of growing the constructor a kwarg at a time:

    ``n_hosts``, ``name_prefix``, ``cpu_scale``, ``costs``
        The physical platform — how many simulated workstations, their
        names, their relative CPU speed, and the cost table (default:
        the SPARCstation 5 calibration).
    ``topology``
        Shape of the *daemon* network: ``"ethernet"`` (alias
        ``"complete"``) or ``"ring"``, or a pre-built
        :class:`~repro.messengers.DaemonNetwork`.
    ``metrics``
        ``True`` for a fresh :class:`~repro.obs.MetricsRegistry`, or a
        registry you built yourself.  Default off (zero overhead).
    ``faults`` / ``seed``
        A :class:`~repro.faults.FaultPlan` and the root seed for its
        random streams.
    ``resilience``
        A :class:`~repro.resilience.ResiliencePolicy` to arm.
    ``mailbox``
        ``True`` or a :class:`~repro.mailbox.MailboxConfig` to arm the
        durable mailbox layer eagerly (``None`` leaves it lazy —
        touching ``c.mail`` arms it with defaults).  When both a
        resilience policy and the mailbox layer are armed, the
        ``no-lost-mail`` / ``no-double-read`` invariants are wired into
        the suite automatically.
    ``service``
        A :class:`~repro.service.ServiceConfig` describing an open-loop
        service workload; ``c.service`` then builds the
        :class:`~repro.service.ServiceWorkload` (lazily, like the other
        layers).  When a resilience policy is also armed, the
        ``no-request-lost`` / ``breaker-sanity`` invariants are wired
        into the suite automatically.
    ``scheduler``
        DES event-queue implementation: ``None`` (the process-wide
        default, normally ``"heap"``), ``"heap"`` (binary heap) or
        ``"calendar"`` (the O(1)-amortised calendar queue for very
        large entity counts — see the README "Scale" section).  Both
        drain in bit-identical order; this is purely a perf knob.
    ``mcl_backend``
        MCL execution backend: ``None`` (the process-wide default,
        normally ``"interp"``), ``"interp"`` (the int-opcode
        interpreter) or ``"closures"`` (basic-block superinstructions
        compiled to Python closures — see the README "Performance"
        section).  Both produce bit-identical Command streams, trace
        digests and interpretation accounting; this is purely a perf
        knob.
    """

    n_hosts: int = 4
    topology: Any = "ethernet"
    costs: Optional[CostModel] = None
    cpu_scale: float = 1.0
    metrics: Union[bool, MetricsRegistry] = False
    faults: Any = None
    seed: int = 0
    resilience: Any = None
    mailbox: Union[None, bool, MailboxConfig] = None
    service: Any = None
    name_prefix: str = "host"
    scheduler: Optional[str] = None
    mcl_backend: Optional[str] = None

    def __post_init__(self):
        if self.n_hosts < 1:
            raise ValueError(
                f"need at least one host, got {self.n_hosts}"
            )
        if (
            self.scheduler is not None
            and self.scheduler not in SCHEDULER_KINDS
        ):
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} (choose from "
                f"{', '.join(SCHEDULER_KINDS)})"
            )
        if (
            self.mcl_backend is not None
            and self.mcl_backend not in MCL_BACKENDS
        ):
            raise ValueError(
                f"unknown MCL backend {self.mcl_backend!r} (choose from "
                f"{', '.join(MCL_BACKENDS)})"
            )
        if (
            isinstance(self.topology, str)
            and self.topology not in TOPOLOGIES
        ):
            raise ValueError(
                f"unknown topology {self.topology!r} (choose from "
                f"{', '.join(TOPOLOGIES)} or pass a DaemonNetwork)"
            )

    def mailbox_config(self) -> MailboxConfig:
        """The effective mailbox configuration (defaults for ``True``)."""
        if isinstance(self.mailbox, MailboxConfig):
            return self.mailbox
        return MailboxConfig()


class Cluster:
    """The paper's platform in one object: N hosts on one shared LAN.

    The canonical constructions::

        Cluster(8)                         # 8 hosts, defaults otherwise
        Cluster(config=ClusterConfig(...)) # fully configured

    An explicit ``n_hosts`` overrides ``config.n_hosts``.  The pre-1.3
    keyword arguments (``topology=``, ``metrics=``, ``faults=``, ...)
    are accepted as deprecation shims: they fold into the config and
    emit a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        n_hosts: Optional[int] = None,
        config: Optional[ClusterConfig] = None,
        **legacy: Any,
    ):
        if legacy:
            unknown = sorted(set(legacy) - set(_LEGACY_KWARGS))
            if unknown:
                raise TypeError(
                    f"unknown Cluster arguments {unknown}; "
                    f"ClusterConfig fields are "
                    f"{[f.name for f in ClusterConfig.__dataclass_fields__.values()]}"
                )
            if config is not None:
                raise TypeError(
                    "pass either a ClusterConfig or legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                "passing subsystem options as keyword arguments "
                f"({', '.join(sorted(legacy))}) is deprecated; build a "
                "repro.ClusterConfig and pass it as config=...",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ClusterConfig(**legacy)
        elif config is None:
            config = ClusterConfig()
        if n_hosts is not None:
            config = replace(config, n_hosts=n_hosts)
        self.config = config

        self.sim = Simulator(
            scheduler=config.scheduler, mcl_backend=config.mcl_backend
        )
        self.costs = (
            config.costs if config.costs is not None else DEFAULT_COSTS
        )
        self.network: Network = build_lan(
            self.sim,
            config.n_hosts,
            self.costs,
            config.cpu_scale,
            config.name_prefix,
        )
        if isinstance(config.metrics, MetricsRegistry):
            self.metrics: Optional[MetricsRegistry] = config.metrics
        elif config.metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = None
        if self.metrics is not None:
            self.sim.metrics = self.metrics

        self._messengers = None
        self._mp = None
        self._mail = None
        self._service = None
        self.injector = None
        if config.faults is not None:
            from .faults import FaultInjector

            self.injector = FaultInjector(
                self.network, config.faults, seed=config.seed
            )
        self.resilience = None
        if config.resilience is not None:
            from .resilience import ResilienceSuite

            self.resilience = ResilienceSuite(
                self.network, config.resilience, seed=config.seed
            )
        if config.mailbox:
            self._arm_mailbox()

    # -- construction of the software layers (lazy) -------------------------

    def _daemon_graph(self):
        from .messengers import DaemonNetwork

        topology = self.config.topology
        if isinstance(topology, DaemonNetwork):
            return topology
        names = self.network.host_names
        if topology == "ring":
            return DaemonNetwork.ring(names)
        return DaemonNetwork.complete(names)

    @property
    def messengers(self):
        """The MESSENGERS runtime on this cluster (built on first use)."""
        if self._messengers is None:
            from .messengers import MessengersSystem

            self._messengers = MessengersSystem(
                self.network, daemon_graph=self._daemon_graph()
            )
        return self._messengers

    @property
    def mp(self):
        """The PVM-workalike runtime on this cluster (built on first use)."""
        if self._mp is None:
            from .mp import MessagePassingSystem

            self._mp = MessagePassingSystem(self.network)
        return self._mp

    def _arm_mailbox(self):
        from .mailbox import (
            MailboxService,
            NoDoubleRead,
            NoLostMail,
            register_mailbox_natives,
        )

        service = MailboxService(
            self.messengers, self.config.mailbox_config()
        )
        register_mailbox_natives(service)
        if self.resilience is not None:
            self.resilience.add_invariant(NoLostMail(service))
            self.resilience.add_invariant(NoDoubleRead(service))
            if service.replication is not None:
                from .replication import (
                    QuorumLiveness,
                    ReplicaConvergence,
                )

                self.resilience.add_invariant(ReplicaConvergence(service))
                self.resilience.add_invariant(QuorumLiveness(service))
        self._mail = service
        return service

    @property
    def mail(self):
        """The durable mailbox layer (armed on first use).

        Prefer configuring it up front (``ClusterConfig(mailbox=...)``)
        so invariants and natives are armed before any run starts.
        """
        if self._mail is None:
            self._arm_mailbox()
        return self._mail

    @property
    def service(self):
        """The open-loop service workload (built on first use).

        Configure via ``ClusterConfig(service=ServiceConfig(...))``;
        with ``service=None`` this property builds a workload with the
        default :class:`~repro.service.ServiceConfig`.
        """
        if self._service is None:
            from .service import ServiceWorkload

            self._service = ServiceWorkload(self, self.config.service)
        return self._service

    # -- cluster shape -------------------------------------------------------

    @property
    def hosts(self):
        return self.network.hosts

    @property
    def host_names(self) -> list[str]:
        return self.network.host_names

    def host(self, name: str):
        return self.network.host(name)

    def __len__(self) -> int:
        return len(self.network)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    # -- host churn ----------------------------------------------------------

    def join_host(
        self,
        name: Optional[str] = None,
        cpu_scale: Optional[float] = None,
    ):
        """Add a workstation to the running cluster (churn: join).

        The new host attaches to the shared segment, its daemon links
        to every current daemon (the LAN rule) and immediately becomes
        a placement and mail-delivery target.  Re-joining a host that
        previously left revives it in place.  Returns the new daemon.
        """
        from .netsim import Host

        # Materialize the daemon layer from the *current* host set
        # first: if the new host joined the network before the lazy
        # build, it would come up with a daemon already running and the
        # explicit add_daemon below would refuse it.
        system = self.messengers
        if name is None:
            index = len(self.network)
            taken = set(self.network.host_names)
            while f"{self.config.name_prefix}{index}" in taken:
                index += 1
            name = f"{self.config.name_prefix}{index}"
        try:
            host = self.network.host(name)
        except KeyError:
            host = Host(
                self.sim,
                name,
                self.costs,
                cpu_scale=(
                    cpu_scale
                    if cpu_scale is not None
                    else self.config.cpu_scale
                ),
            )
            self.network.add_host(host)
        return system.add_daemon(host)

    def leave_host(self, name: str) -> None:
        """Gracefully remove a workstation mid-run (churn: leave).

        Nothing is lost: logical nodes re-home, ready Messengers
        migrate, in-flight traffic is forwarded, and durable mailboxes
        follow their nodes.  See
        :meth:`~repro.messengers.MessengersSystem.retire_daemon`.
        """
        self.messengers.retire_daemon(name)

    def schedule(self, at_s: float, fn: Callable[["Cluster"], Any]):
        """Run ``fn(cluster)`` at simulated time ``at_s`` (churn driver).

        The callback runs as a foreground event, so a scheduled join or
        leave keeps the run alive until it has happened.
        """

        def _event():
            delay = at_s - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            fn(self)

        return self.sim.process(_event())

    # -- MESSENGERS-side delegates ------------------------------------------

    @property
    def natives(self):
        """Native-function registry (``@c.natives.register``)."""
        return self.messengers.natives

    def inject(self, script, **kwargs):
        """Inject a Messenger (see :meth:`MessengersSystem.inject`)."""
        return self.messengers.inject(script, **kwargs)

    def run_to_quiescence(self) -> float:
        """Run until no Messenger can make progress; returns sim.now."""
        return self.messengers.run_to_quiescence()

    def daemon(self, name: str):
        return self.messengers.daemon(name)

    @property
    def logical(self):
        """The persistent logical network."""
        return self.messengers.logical

    def add_node(self, name: str, daemon: Optional[str] = None):
        """Create a named logical node (a mailbox endpoint, a landmark).

        Placed on ``daemon`` (default: the first host).  Returns the
        :class:`~repro.messengers.logical.LogicalNode`.
        """
        home = daemon if daemon is not None else self.host_names[0]
        if home not in self.messengers.daemons:
            raise KeyError(f"unknown daemon {home!r}")
        return self.messengers.logical.create_node(name, home)

    def shell(self):
        """An interactive/programmatic shell bound to this cluster."""
        from .messengers import Shell

        return Shell(self.messengers)

    def tracer(self, capacity: Optional[int] = None):
        """Attach and return a :class:`~repro.messengers.Tracer`."""
        from .messengers import Tracer

        return Tracer.attach(self.messengers, capacity)

    # -- mailbox delegates ---------------------------------------------------

    def mailbox(self, node):
        """The durable mailbox of ``node`` (a LogicalNode, uid, or name)."""
        return self.mail.mailbox(node)

    def send_mail(self, to, body, subject: str = "", frm=None):
        """Post one mail to ``to``'s mailbox; returns the Mail record."""
        return self.mail.send(to, body, subject=subject, frm=frm)

    def broadcast(self, body, subject: str = "", frm=None, **kwargs):
        """Post one mail to every registered mailbox (deduped fan-out)."""
        return self.mail.broadcast(body, subject=subject, frm=frm, **kwargs)

    def consumer(self, node, handler, poll_interval_s=None):
        """Attach a poll-mode consumer to ``node``'s mailbox."""
        return self.mail.consumer(
            node, handler, poll_interval_s=poll_interval_s
        )

    @property
    def mail_stats(self) -> dict:
        """Mailbox lifecycle counters (empty dict when never armed)."""
        return dict(self._mail.counts) if self._mail is not None else {}

    # -- message-passing-side delegates -------------------------------------

    def spawn(self, behavior: Callable, *args, **kwargs) -> int:
        """Start a message-passing task (see
        :meth:`MessagePassingSystem.spawn`)."""
        return self.mp.spawn(behavior, *args, **kwargs)

    # -- driving -------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Drive the simulation (delegates to the simulator)."""
        return self.sim.run(until=until)

    # -- observability -------------------------------------------------------

    @property
    def n_tracks(self) -> int:
        """Cost-ledger timelines: every host plus the shared wire."""
        return len(self.network) + 1

    def snapshot(self) -> dict:
        """Metric snapshot (empty dict when metrics are off)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    @property
    def fault_stats(self) -> dict:
        """Injection/recovery counters (empty dict without a fault plan)."""
        return dict(self.injector.counts) if self.injector is not None else {}

    @property
    def resilience_stats(self) -> dict:
        """Detector/supervision/invariant statistics (empty without a
        resilience policy)."""
        return self.resilience.stats() if self.resilience is not None else {}

    def breakdown(self) -> dict:
        """Per-category cost breakdown of the run so far.

        Requires the cluster to have been built with metrics enabled.
        """
        if self.metrics is None:
            raise RuntimeError(
                "cluster was built without metrics; set metrics=True on "
                "the ClusterConfig (or repro.cluster(...)) to enable "
                "the cost ledger"
            )
        return cost_breakdown(self.metrics, self.sim.now, self.n_tracks)

    def report(self, title: str = "virtual-time cost breakdown") -> str:
        """ASCII rendering of :meth:`breakdown`."""
        return format_breakdown(self.breakdown(), title=title)

    def __repr__(self) -> str:
        layers = []
        if self._messengers is not None:
            layers.append("messengers")
        if self._mp is not None:
            layers.append("mp")
        if self._mail is not None:
            layers.append("mail")
        if self._service is not None:
            layers.append("service")
        return (
            f"<Cluster hosts={len(self.network)} "
            f"t={self.sim.now:.6f}s "
            f"layers=[{', '.join(layers) or '-'}]"
            f"{' metrics' if self.metrics is not None else ''}>"
        )


def cluster(
    n_hosts: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    **legacy: Any,
) -> Cluster:
    """Build the paper's platform: ``n_hosts`` workstations on one LAN.

    ``repro.cluster(4)`` for the defaults, ``repro.cluster(config=cfg)``
    for a fully configured platform.  Legacy keyword arguments are
    folded into a :class:`ClusterConfig` with a DeprecationWarning (see
    :class:`Cluster`).
    """
    return Cluster(n_hosts, config=config, **legacy)


@dataclass
class ExperimentResult:
    """What one measured run produced."""

    #: Value returned by the experiment body (if any).
    value: Any
    #: Simulated seconds at the end of the run.
    elapsed_s: float
    #: Metric snapshot (empty when metrics were off).
    snapshot: dict = field(default_factory=dict)
    #: Cost breakdown dict (None when metrics were off).
    breakdown: Optional[dict] = None
    #: The cluster, for further inspection.
    cluster: Optional[Cluster] = None

    def report(self, title: str = "virtual-time cost breakdown") -> str:
        """ASCII cost-breakdown table (empty string if metrics were off)."""
        if self.breakdown is None:
            return ""
        return format_breakdown(self.breakdown, title=title)


class Experiment:
    """Fluent builder for measured runs, backed by a ClusterConfig.

    Every builder step returns ``self``; ``.build()`` materializes the
    cluster and ``.run(body)`` measures one ``body(cluster)`` call.
    Write the body as a function — statements, not an ``and``-chain::

        def body(c):
            c.inject(SCRIPT)
            return c.run_to_quiescence()

        result = (
            repro.Experiment()
            .hosts(8)
            .topology("ring")
            .metrics()
            .run(body)
        )
    """

    def __init__(self, config: Optional[ClusterConfig] = None):
        self._config = config if config is not None else ClusterConfig()

    # -- builder steps (each returns self) ----------------------------------

    def config(self, config: ClusterConfig) -> "Experiment":
        """Replace the accumulated configuration wholesale."""
        self._config = config
        return self

    def hosts(self, n: int) -> "Experiment":
        self._config = replace(self._config, n_hosts=n)
        return self

    def topology(self, shape: Any) -> "Experiment":
        self._config = replace(self._config, topology=shape)
        return self

    def costs(self, costs: CostModel) -> "Experiment":
        self._config = replace(self._config, costs=costs)
        return self

    def cpu_scale(self, scale: float) -> "Experiment":
        self._config = replace(self._config, cpu_scale=scale)
        return self

    def metrics(
        self, registry: Union[bool, MetricsRegistry] = True
    ) -> "Experiment":
        self._config = replace(self._config, metrics=registry)
        return self

    def faults(self, plan: Any) -> "Experiment":
        """Attach a :class:`~repro.faults.FaultPlan` to the run."""
        self._config = replace(self._config, faults=plan)
        return self

    def seed(self, seed: int) -> "Experiment":
        """Root seed for the fault plan's random streams."""
        self._config = replace(self._config, seed=seed)
        return self

    def resilience(self, policy: Any) -> "Experiment":
        """Arm a :class:`~repro.resilience.ResiliencePolicy` on the run."""
        self._config = replace(self._config, resilience=policy)
        return self

    def mailbox(
        self, config: Union[bool, MailboxConfig] = True
    ) -> "Experiment":
        """Arm the durable mailbox layer on the run."""
        self._config = replace(self._config, mailbox=config)
        return self

    def replication(self, config: Any = True) -> "Experiment":
        """Replicate the mailbox layer (arming it if not configured).

        Accepts a :class:`~repro.replication.ReplicationConfig` or
        ``True`` for the defaults (factor 2, majority quorum); the
        mailbox layer is armed implicitly when this step runs first.
        """
        from .replication import ReplicationConfig

        if config is True:
            config = ReplicationConfig()
        mailbox = self._config.mailbox
        base = (
            mailbox
            if isinstance(mailbox, MailboxConfig)
            else MailboxConfig()
        )
        self._config = replace(
            self._config, mailbox=replace(base, replication=config)
        )
        return self

    def service(self, config: Any) -> "Experiment":
        """Attach a :class:`~repro.service.ServiceConfig` to the run."""
        self._config = replace(self._config, service=config)
        return self

    def name_prefix(self, prefix: str) -> "Experiment":
        self._config = replace(self._config, name_prefix=prefix)
        return self

    def mcl_backend(self, kind: str) -> "Experiment":
        """Select the MCL execution backend (``"interp"``/``"closures"``)."""
        self._config = replace(self._config, mcl_backend=kind)
        return self

    # -- terminal steps ------------------------------------------------------

    def build(self) -> Cluster:
        """Materialize the cluster without running anything."""
        return Cluster(config=self._config)

    def run(self, body: Callable[[Cluster], Any]) -> ExperimentResult:
        """Build the cluster, run ``body(cluster)``, collect the results.

        The body drives the simulation itself (e.g. ``inject`` +
        ``run_to_quiescence``, or spawning tasks and ``c.run()``); its
        return value lands in ``result.value``.
        """
        built = self.build()
        value = body(built)
        return ExperimentResult(
            value=value,
            elapsed_s=built.sim.now,
            snapshot=built.snapshot(),
            breakdown=(
                built.breakdown() if built.metrics is not None else None
            ),
            cluster=built,
        )
