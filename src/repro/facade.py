"""One-call construction of the paper's platform.

Everything in this repository can be assembled by hand — a
:class:`~repro.des.Simulator`, a LAN from
:func:`~repro.netsim.build_lan`, then a
:class:`~repro.messengers.MessengersSystem` or
:class:`~repro.mp.MessagePassingSystem` on top — and the lower layers
remain the canonical API for benchmarks that need full control.  But
the common case is always the same four lines, so this module provides
them as one::

    import repro

    c = repro.cluster(4)                 # 4 workstations, one Ethernet
    c.inject('hello() { create(ALL); M_log("hi from", $address); }')
    c.run_to_quiescence()

A :class:`Cluster` owns the simulator and the physical network and
builds the software systems lazily: ``c.messengers`` the first time a
Messenger-side call is made, ``c.mp`` the first time a task is
spawned.  Both share the same wire, so mixed experiments work too.

:class:`Experiment` is the fluent front end for measured runs::

    result = (repro.Experiment().hosts(8).metrics()
              .run(lambda c: c.inject(SCRIPT) and c.run_to_quiescence()))
    print(result.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from .des import Simulator
from .netsim import CostModel, DEFAULT_COSTS, Network, build_lan
from .obs import MetricsRegistry, cost_breakdown, format_breakdown

__all__ = ["Cluster", "Experiment", "ExperimentResult", "cluster"]

#: Daemon-graph shapes :class:`Cluster` knows how to build.
TOPOLOGIES = ("ethernet", "complete", "ring")


class Cluster:
    """The paper's platform in one object: N hosts on one shared LAN.

    Parameters
    ----------
    n_hosts:
        Number of simulated workstations.
    topology:
        Shape of the *daemon* network: ``"ethernet"`` (alias
        ``"complete"``, the paper's single-LAN platform where every
        daemon reaches every other) or ``"ring"``.  A pre-built
        :class:`~repro.messengers.DaemonNetwork` is also accepted.
        The physical substrate is always one shared Ethernet segment.
    costs:
        Platform cost table (default: the SPARCstation 5 calibration).
    cpu_scale:
        Relative CPU speed of every host.
    metrics:
        ``True`` to attach a fresh :class:`~repro.obs.MetricsRegistry`
        to the simulator (or pass a registry you built yourself).
        Default off — the zero-overhead path.
    faults:
        A :class:`~repro.faults.FaultPlan` to attach.  Packet loss,
        duplication, corruption, partitions, crashes, and restarts then
        replay deterministically from ``seed``; recovery counters land
        in :attr:`fault_stats`.
    seed:
        Root seed for the fault plan's random streams.
    resilience:
        A :class:`~repro.resilience.ResiliencePolicy` to arm: failure
        detector (crash recovery by detection instead of the oracle),
        supervision restarts, transport flow control.  The armed
        :class:`~repro.resilience.ResilienceSuite` is exposed as
        :attr:`resilience`; its statistics as :attr:`resilience_stats`.
    name_prefix:
        Host names are ``f"{name_prefix}{index}"``.
    """

    def __init__(
        self,
        n_hosts: int = 4,
        topology: Any = "ethernet",
        costs: Optional[CostModel] = None,
        cpu_scale: float = 1.0,
        metrics: Union[bool, MetricsRegistry] = False,
        faults: Any = None,
        seed: int = 0,
        resilience: Any = None,
        name_prefix: str = "host",
    ):
        self.sim = Simulator()
        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.network: Network = build_lan(
            self.sim, n_hosts, self.costs, cpu_scale, name_prefix
        )
        if isinstance(metrics, MetricsRegistry):
            self.metrics: Optional[MetricsRegistry] = metrics
        elif metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = None
        if self.metrics is not None:
            self.sim.metrics = self.metrics

        if isinstance(topology, str) and topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r} (choose from "
                f"{', '.join(TOPOLOGIES)} or pass a DaemonNetwork)"
            )
        self._topology = topology
        self._messengers = None
        self._mp = None
        self.injector = None
        if faults is not None:
            from .faults import FaultInjector

            self.injector = FaultInjector(self.network, faults, seed=seed)
        self.resilience = None
        if resilience is not None:
            from .resilience import ResilienceSuite

            self.resilience = ResilienceSuite(
                self.network, resilience, seed=seed
            )

    # -- construction of the software layers (lazy) -------------------------

    def _daemon_graph(self):
        from .messengers import DaemonNetwork

        if isinstance(self._topology, DaemonNetwork):
            return self._topology
        names = self.network.host_names
        if self._topology == "ring":
            return DaemonNetwork.ring(names)
        return DaemonNetwork.complete(names)

    @property
    def messengers(self):
        """The MESSENGERS runtime on this cluster (built on first use)."""
        if self._messengers is None:
            from .messengers import MessengersSystem

            self._messengers = MessengersSystem(
                self.network, daemon_graph=self._daemon_graph()
            )
        return self._messengers

    @property
    def mp(self):
        """The PVM-workalike runtime on this cluster (built on first use)."""
        if self._mp is None:
            from .mp import MessagePassingSystem

            self._mp = MessagePassingSystem(self.network)
        return self._mp

    # -- cluster shape -------------------------------------------------------

    @property
    def hosts(self):
        return self.network.hosts

    @property
    def host_names(self) -> list[str]:
        return self.network.host_names

    def host(self, name: str):
        return self.network.host(name)

    def __len__(self) -> int:
        return len(self.network)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    # -- MESSENGERS-side delegates ------------------------------------------

    @property
    def natives(self):
        """Native-function registry (``@c.natives.register``)."""
        return self.messengers.natives

    def inject(self, script, **kwargs):
        """Inject a Messenger (see :meth:`MessengersSystem.inject`)."""
        return self.messengers.inject(script, **kwargs)

    def run_to_quiescence(self) -> float:
        """Run until no Messenger can make progress; returns sim.now."""
        return self.messengers.run_to_quiescence()

    def daemon(self, name: str):
        return self.messengers.daemon(name)

    @property
    def logical(self):
        """The persistent logical network."""
        return self.messengers.logical

    def shell(self):
        """An interactive/programmatic shell bound to this cluster."""
        from .messengers import Shell

        return Shell(self.messengers)

    def tracer(self, capacity: Optional[int] = None):
        """Attach and return a :class:`~repro.messengers.Tracer`."""
        from .messengers import Tracer

        return Tracer.attach(self.messengers, capacity)

    # -- message-passing-side delegates -------------------------------------

    def spawn(self, behavior: Callable, *args, **kwargs) -> int:
        """Start a message-passing task (see
        :meth:`MessagePassingSystem.spawn`)."""
        return self.mp.spawn(behavior, *args, **kwargs)

    # -- driving -------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Drive the simulation (delegates to the simulator)."""
        return self.sim.run(until=until)

    # -- observability -------------------------------------------------------

    @property
    def n_tracks(self) -> int:
        """Cost-ledger timelines: every host plus the shared wire."""
        return len(self.network) + 1

    def snapshot(self) -> dict:
        """Metric snapshot (empty dict when metrics are off)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    @property
    def fault_stats(self) -> dict:
        """Injection/recovery counters (empty dict without a fault plan)."""
        return dict(self.injector.counts) if self.injector is not None else {}

    @property
    def resilience_stats(self) -> dict:
        """Detector/supervision/invariant statistics (empty without a
        resilience policy)."""
        return self.resilience.stats() if self.resilience is not None else {}

    def breakdown(self) -> dict:
        """Per-category cost breakdown of the run so far.

        Requires the cluster to have been built with ``metrics=True``.
        """
        if self.metrics is None:
            raise RuntimeError(
                "cluster was built without metrics; pass metrics=True "
                "to repro.cluster(...) to enable the cost ledger"
            )
        return cost_breakdown(self.metrics, self.sim.now, self.n_tracks)

    def report(self, title: str = "virtual-time cost breakdown") -> str:
        """ASCII rendering of :meth:`breakdown`."""
        return format_breakdown(self.breakdown(), title=title)

    def __repr__(self) -> str:
        layers = []
        if self._messengers is not None:
            layers.append("messengers")
        if self._mp is not None:
            layers.append("mp")
        return (
            f"<Cluster hosts={len(self.network)} "
            f"t={self.sim.now:.6f}s "
            f"layers=[{', '.join(layers) or '-'}]"
            f"{' metrics' if self.metrics is not None else ''}>"
        )


def cluster(n_hosts: int = 4, **kwargs) -> Cluster:
    """Build the paper's platform: ``n_hosts`` workstations on one LAN.

    Keyword arguments are forwarded to :class:`Cluster`.
    """
    return Cluster(n_hosts, **kwargs)


@dataclass
class ExperimentResult:
    """What one measured run produced."""

    #: Value returned by the experiment body (if any).
    value: Any
    #: Simulated seconds at the end of the run.
    elapsed_s: float
    #: Metric snapshot (empty when metrics were off).
    snapshot: dict = field(default_factory=dict)
    #: Cost breakdown dict (None when metrics were off).
    breakdown: Optional[dict] = None
    #: The cluster, for further inspection.
    cluster: Optional[Cluster] = None

    def report(self, title: str = "virtual-time cost breakdown") -> str:
        """ASCII cost-breakdown table (empty string if metrics were off)."""
        if self.breakdown is None:
            return ""
        return format_breakdown(self.breakdown, title=title)


class Experiment:
    """Fluent builder for measured runs.

    ::

        result = (
            repro.Experiment()
            .hosts(8)
            .topology("ring")
            .metrics()
            .run(body)          # body(cluster) -> value
        )
    """

    def __init__(self):
        self._n_hosts = 4
        self._topology: Any = "ethernet"
        self._costs: Optional[CostModel] = None
        self._cpu_scale = 1.0
        self._metrics: Union[bool, MetricsRegistry] = False
        self._faults: Any = None
        self._seed = 0
        self._resilience: Any = None
        self._name_prefix = "host"

    # -- builder steps (each returns self) ----------------------------------

    def hosts(self, n: int) -> "Experiment":
        self._n_hosts = n
        return self

    def topology(self, shape: Any) -> "Experiment":
        self._topology = shape
        return self

    def costs(self, costs: CostModel) -> "Experiment":
        self._costs = costs
        return self

    def cpu_scale(self, scale: float) -> "Experiment":
        self._cpu_scale = scale
        return self

    def metrics(
        self, registry: Union[bool, MetricsRegistry] = True
    ) -> "Experiment":
        self._metrics = registry
        return self

    def faults(self, plan: Any) -> "Experiment":
        """Attach a :class:`~repro.faults.FaultPlan` to the run."""
        self._faults = plan
        return self

    def seed(self, seed: int) -> "Experiment":
        """Root seed for the fault plan's random streams."""
        self._seed = seed
        return self

    def resilience(self, policy: Any) -> "Experiment":
        """Arm a :class:`~repro.resilience.ResiliencePolicy` on the run."""
        self._resilience = policy
        return self

    def name_prefix(self, prefix: str) -> "Experiment":
        self._name_prefix = prefix
        return self

    # -- terminal steps ------------------------------------------------------

    def build(self) -> Cluster:
        """Materialize the cluster without running anything."""
        return Cluster(
            self._n_hosts,
            topology=self._topology,
            costs=self._costs,
            cpu_scale=self._cpu_scale,
            metrics=self._metrics,
            faults=self._faults,
            seed=self._seed,
            resilience=self._resilience,
            name_prefix=self._name_prefix,
        )

    def run(self, body: Callable[[Cluster], Any]) -> ExperimentResult:
        """Build the cluster, run ``body(cluster)``, collect the results.

        The body drives the simulation itself (e.g. ``inject`` +
        ``run_to_quiescence``, or spawning tasks and ``c.run()``); its
        return value lands in ``result.value``.
        """
        built = self.build()
        value = body(built)
        return ExperimentResult(
            value=value,
            elapsed_s=built.sim.now,
            snapshot=built.snapshot(),
            breakdown=(
                built.breakdown() if built.metrics is not None else None
            ),
            cluster=built,
        )
